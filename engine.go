package fpsa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fpsa/internal/serve"
	"fpsa/internal/synth"
)

// EngineConfig shapes a serving engine.
//
// Deprecated: new code derives engines from a compiled Deployment with
// Deployment.NewEngine and functional options (WithWorkers,
// WithMaxBatch, WithMode, …); the struct remains as the carrier behind
// those options and the legacy NewEngine entry point.
type EngineConfig struct {
	// Workers is the number of parallel execution replicas; each holds
	// its own programmed simulation state. 0 means 1.
	Workers int
	// MaxBatch is the micro-batch flush size (0 = 8); FlushInterval is
	// the micro-batch flush deadline (0 = 500µs).
	MaxBatch      int
	FlushInterval time.Duration
	// QueueDepth bounds the request queue (0 = 1024).
	QueueDepth int
	// Mode selects the execution semantics (default ModeReference). In
	// ModeSpikingNoisy each worker replica is programmed with its own
	// deterministic variation derived from the SpikingNet seed.
	Mode ExecMode
	// Chips, when ≥ 2, serves the network as a sharded multi-chip
	// deployment: the program's stages are partitioned across that many
	// pipelined chips (balanced load; clamped to what the program
	// supports) and all workers feed the one shared pipeline, so
	// consecutive micro-batches overlap chip-by-chip. Outputs are
	// bit-identical to the single-chip engine in every mode; in
	// ModeSpikingNoisy the sharded deployment is one physical set of
	// chips with a single variation draw. 0 or 1 serves single-chip.
	Chips int
	// Spike selects the spiking kernel (default SpikeAuto: pick dense or
	// bit-packed sparse per micro-batch from its observed spike density).
	// The kernels are bit-identical, so this is purely a performance
	// knob; FPSA_SPIKE_PATH overrides it at deploy time.
	Spike SpikePath
	// SparseThreshold is the auto-path density cutoff in (0, 1]; 0 means
	// the built-in default (0.30). FPSA_SPIKE_DENSITY overrides it.
	SparseThreshold float64
}

// defaultEngineConfig is the serving sweet spot every engine starts
// from: 4 workers, micro-batches of 8, spiking mode.
func defaultEngineConfig() EngineConfig {
	return EngineConfig{Workers: 4, MaxBatch: 8, Mode: ModeSpiking}
}

// DefaultEngineConfig returns a spiking-mode engine sized like the
// paper's serving sweet spot: 4 workers, micro-batches of 8.
//
// Deprecated: Deployment.NewEngine starts from these defaults; there is
// nothing left to construct.
func DefaultEngineConfig() EngineConfig { return defaultEngineConfig() }

// Engine serves a deployed SpikingNet concurrently: requests queue into
// micro-batches (flushed on size or deadline) and a worker pool of
// per-replica execution states classifies them in parallel. Construct
// with NewEngine and Close when done. All methods are safe for
// concurrent use.
type Engine struct {
	eng    *serve.Engine
	window int
}

// NewEngine builds a serving engine over a deployed network.
//
// Deprecated: derive the engine from the compiled deployment instead —
// Deployment.NewEngine — so the chip partition and seed flow from the
// compile; WithEngineConfig bridges an existing EngineConfig.
func NewEngine(sn *SpikingNet, cfg EngineConfig) (*Engine, error) {
	return newEngine(sn, cfg, ShardAuto.servePolicy())
}

// newEngine builds the serving engine over a deployed network. The
// SpikingNet itself remains usable (and independent) afterwards. policy
// is the stage-partitioning objective of a sharded engine (carried from
// the deployment's ShardPolicy on the Deployment.NewEngine path).
func newEngine(sn *SpikingNet, cfg EngineConfig, policy serve.StagePolicy) (*Engine, error) {
	// A nonsensical density cutoff would otherwise flow silently into the
	// kernel auto-selection (which treats out-of-range as "default") —
	// reject it here where the caller can still see which option was
	// wrong. 0 remains "use the built-in default".
	if t := cfg.SparseThreshold; math.IsNaN(t) || t < 0 || t > 1 {
		return nil, fmt.Errorf("%w: WithSparseThreshold(%v): density cutoff must be in (0, 1] (0 = default)", ErrInvalidArgument, t)
	}
	// Same treatment for the integer serving knobs: negative values are
	// caller bugs, not requests for the default.
	for _, k := range []struct {
		name string
		v    int
	}{
		{"WithWorkers", cfg.Workers},
		{"WithMaxBatch", cfg.MaxBatch},
		{"WithQueueDepth", cfg.QueueDepth},
		{"WithEngineChips", cfg.Chips},
	} {
		if k.v < 0 {
			return nil, fmt.Errorf("%w: %s(%d): value must be ≥ 0 (0 = default)", ErrInvalidArgument, k.name, k.v)
		}
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("%w: WithFlushInterval(%v): interval must be ≥ 0 (0 = default)", ErrInvalidArgument, cfg.FlushInterval)
	}
	mode, err := cfg.Mode.synthMode()
	if err != nil {
		return nil, err
	}
	spike, err := cfg.Spike.xbarPath()
	if err != nil {
		return nil, err
	}
	eng, err := serve.New(sn.prog, serve.Options{
		Workers:         cfg.Workers,
		MaxBatch:        cfg.MaxBatch,
		FlushInterval:   cfg.FlushInterval,
		QueueDepth:      cfg.QueueDepth,
		Mode:            mode,
		Seed:            sn.currentSeed() + 7,
		Chips:           cfg.Chips,
		Policy:          policy,
		Spike:           spike,
		SparseThreshold: cfg.SparseThreshold,
		Faults:          sn.faults,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, window: sn.Window()}, nil
}

// Chips returns the engine's realized pipeline depth: the sharded chip
// count, or 1 for a single-chip engine.
func (e *Engine) Chips() int { return e.eng.Chips() }

// Classify queues one feature vector (values in [0, 1]) and blocks until
// a worker returns its argmax class or ctx is done; queue admission and
// completion are both bounded by ctx. After Close it returns ErrClosed.
func (e *Engine) Classify(ctx context.Context, features []float64) (int, error) {
	out, err := e.Outputs(ctx, features)
	if err != nil {
		return 0, err
	}
	return synth.Argmax(out), nil
}

// ClassifyCtx is the old name of Classify from when the package carried
// ctx-less/ctx-ful method pairs.
//
// Deprecated: use Classify.
func (e *Engine) ClassifyCtx(ctx context.Context, features []float64) (int, error) {
	return e.Classify(ctx, features)
}

// Outputs queues one feature vector and returns the raw output spike
// counts, bounded by ctx as in Classify.
func (e *Engine) Outputs(ctx context.Context, features []float64) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out, err := e.eng.Infer(ctx, synth.QuantizeInput(features, e.window))
	return out, wrapServeErr(err)
}

// OutputsCtx is the old name of Outputs.
//
// Deprecated: use Outputs.
func (e *Engine) OutputsCtx(ctx context.Context, features []float64) ([]int, error) {
	return e.Outputs(ctx, features)
}

// ClassifyBatch queues every sample at once — one call fills whole
// micro-batches — and returns the positional argmax classes.
func (e *Engine) ClassifyBatch(ctx context.Context, batch [][]float64) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ins := make([][]int, len(batch))
	for i, f := range batch {
		ins[i] = synth.QuantizeInput(f, e.window)
	}
	outs, err := e.eng.InferBatch(ctx, ins)
	if err != nil {
		return nil, wrapServeErr(err)
	}
	labels := make([]int, len(outs))
	for i, out := range outs {
		labels[i] = synth.Argmax(out)
	}
	return labels, nil
}

// EngineStats is a snapshot of an engine's serving counters — the
// served-traffic counterpart of PerfSummary.
type EngineStats struct {
	Requests  uint64
	Errors    uint64
	Shed      uint64
	Batches   uint64
	MeanBatch float64
	// ExecBatches, MeanExecBatch and MaxExecBatch describe the
	// executor-level batched kernel passes: how many RunBatch calls the
	// workers issued and how many live requests each carried after
	// shedding — the kernel batching actually achieved, as opposed to
	// the MaxBatch configured ceiling.
	ExecBatches   uint64
	MeanExecBatch float64
	MaxExecBatch  int
	// SparseKernels and DenseKernels count per-crossbar spiking-kernel
	// invocations that took the bit-packed sparse path versus the dense
	// cycle walk, across every execution replica; SpikeDensity is the
	// aggregate observed input spike density over those calls. All zero
	// under ModeReference, which runs neither kernel.
	SparseKernels uint64
	DenseKernels  uint64
	SpikeDensity  float64
	// FaultedCells is the deployment's residual stuck-cell count under
	// its compiled fault model (WithFaultModel / WithFaultMap): stuck
	// logical weight cells across the program's crossbars after
	// spare-row/column remapping. Per-deployment — every execution
	// replica programs identical faults — and 0 without a fault model.
	FaultedCells  int
	ThroughputSPS float64
	// P50LatencyUS, P99LatencyUS and P999LatencyUS are queue-to-completion
	// latency percentiles over a sliding window of recent requests; the
	// fleet layer reports the same three through the same implementation.
	P50LatencyUS  float64
	P99LatencyUS  float64
	P999LatencyUS float64
	QueueDepth    int
	Workers       int
	MaxBatch      int
	// Chips is the realized pipeline depth of a sharded engine (1 when
	// the model is served whole on per-worker executors).
	Chips   int
	UptimeS float64
}

// String renders the snapshot.
func (s EngineStats) String() string { return serve.Stats(s).String() }

// Stats snapshots the engine's counters and latency percentiles.
func (e *Engine) Stats() EngineStats { return EngineStats(e.eng.Stats()) }

// Close drains queued requests, stops the workers and releases the
// engine. Idempotent; Classify afterwards returns ErrClosed.
func (e *Engine) Close() error { return wrapServeErr(e.eng.Close()) }

// wrapServeErr lifts internal serving sentinels into the package's
// taxonomy: a closed engine surfaces as ErrClosed (which itself wraps
// the internal sentinel), so callers errors.Is against fpsa.ErrClosed
// without importing internals.
func wrapServeErr(err error) error {
	if errors.Is(err, serve.ErrClosed) {
		return ErrClosed
	}
	return err
}

// DeployKey identifies one deployment for caching: a model (or trained
// network) name, its duplication/config fingerprint, and the variation
// seed.
type DeployKey struct {
	Model string
	Dup   int
	Seed  int64
}

func (k DeployKey) String() string {
	return fmt.Sprintf("%s|dup=%d|seed=%d", k.Model, k.Dup, k.Seed)
}

// DeployCache memoizes deployed spiking networks by DeployKey so every
// engine serving the same (model, config, seed) shares one synthesis.
// Concurrent requests for the same key block on a single deploy; failed
// deploys are retried. It also carries a CompileCache (see Artifacts) so
// a serving stack shares one place-and-route artifact store as well. The
// zero value is not usable; call NewDeployCache.
type DeployCache struct {
	progs     *serve.Cache
	artifacts *CompileCache
}

// NewDeployCache returns an empty cache.
func NewDeployCache() *DeployCache {
	return &DeployCache{progs: serve.NewCache(), artifacts: NewCompileCache(0)}
}

// Artifacts returns the cache's compiled-deployment store. Pass it as
// Config.Cache to every Compile backing this cache's deployments so
// placement, routing and bitstream generation also run at most once per
// (model, Config) across the serving fleet.
func (c *DeployCache) Artifacts() *CompileCache { return c.artifacts }

// GetOrDeploy returns the cached SpikingNet for key, calling deploy at
// most once per key. The returned net has its variation seed set from
// the key.
func (c *DeployCache) GetOrDeploy(key DeployKey, deploy func() (*SpikingNet, error)) (*SpikingNet, error) {
	prog, err := c.progs.GetOrCompile(key.String(), func() (*synth.Program, error) {
		sn, err := deploy()
		if err != nil {
			return nil, err
		}
		return sn.prog, nil
	})
	if err != nil {
		return nil, err
	}
	sn := &SpikingNet{prog: prog}
	sn.SetSeed(key.Seed)
	return sn, nil
}

// Len reports the number of cached deployments.
func (c *DeployCache) Len() int { return c.progs.Len() }

// Counters reports cache hits and misses since construction.
func (c *DeployCache) Counters() (hits, misses int64) { return c.progs.Counters() }
