package fpsa

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/experiments"
	"fpsa/internal/synth"
)

// One benchmark per paper artifact: running `go test -bench=.` regenerates
// every table and figure of the evaluation. The rendered outputs come from
// cmd/fpsa-bench; these measure the regeneration cost and pin the drivers
// into the benchmark harness as the task requires.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(device.Params45nm)
		if len(rows) != 7 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(device.Params45nm)
		if r.DensityGain < 30 {
			b.Fatal("density gain")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(64)
		if err != nil || len(rows) != 7 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.SpeedupAtMatchedArea < 100 {
			b.Fatal("speedup collapsed")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7()
		if err != nil || len(rows) != 3 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(experiments.Figure9Options{Trials: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// Supporting micro-benchmarks: the stack's heavy phases in isolation.

func BenchmarkCompileVGG16(b *testing.B) {
	m, err := LoadBenchmark("VGG16")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileConfig(m, Config{Duplication: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceAndRoute compares the classic single-seed annealer with
// the multi-seed portfolio on the CNN example deployment (LeNet at 4×
// duplication, as in examples/cnn_compile). The four portfolio runs
// anneal concurrently on four workers, so with four free cores the
// portfolio returns a lower-cost placement (compare the wirelength-cost
// metric across the sub-benchmarks) in roughly one serial run's
// wall-clock; on fewer cores the runs serialize and the cost win costs
// proportional time.
func BenchmarkPlaceAndRoute(b *testing.B) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg Config) {
		d, err := CompileConfig(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var cost float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats, err := d.PlaceAndRoute(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			cost = stats.WirelengthCost
		}
		b.ReportMetric(cost, "wirelength-cost")
	}
	b.Run("serial", func(b *testing.B) {
		run(b, Config{Duplication: 4, Seed: 2, Parallelism: 1})
	})
	b.Run("portfolio4", func(b *testing.B) {
		run(b, Config{Duplication: 4, Seed: 2, PlacementSeeds: 4, Parallelism: 4})
	})
}

// TestPortfolioPlacementAtLeastAsGood pins the benchmark's claim: on the
// CNN example deployment the 4-seed portfolio's winning placement never
// costs more than the serial annealer's (both are deterministic, so this
// is a stable property, not a flaky sample).
func TestPortfolioPlacementAtLeastAsGood(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	pr := func(cfg Config) PRStats {
		t.Helper()
		d, err := CompileConfig(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.PlaceAndRoute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := pr(Config{Duplication: 4, Seed: 2, Parallelism: 1})
	portfolio := pr(Config{Duplication: 4, Seed: 2, PlacementSeeds: 4, Parallelism: 4})
	if portfolio.WirelengthCost > serial.WirelengthCost {
		t.Errorf("portfolio cost %.0f worse than serial %.0f", portfolio.WirelengthCost, serial.WirelengthCost)
	}
	if portfolio.Restarts != 4 {
		t.Errorf("Restarts = %d, want 4", portfolio.Restarts)
	}
}

func BenchmarkSpikingInference(b *testing.B) {
	sn, train := deployBenchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sn.Classify(train.X[i%len(train.X)], ModeSpiking); err != nil {
			b.Fatal(err)
		}
	}
}

// deployBenchNet builds the shared MLP serving workload: the serial
// BenchmarkSpikingInference loop and the BenchmarkEngine variants all
// classify the same deployed network, so samples/op compare directly.
func deployBenchNet(b *testing.B) (*SpikingNet, Dataset) {
	b.Helper()
	ds := SyntheticDataset(5, 300, 16, 4, 0.08)
	train, _ := ds.Split(0.9)
	net, err := TrainMLP(5, []int{16, 24, 4}, train, 20)
	if err != nil {
		b.Fatal(err)
	}
	sn, err := net.Deploy()
	if err != nil {
		b.Fatal(err)
	}
	return sn, train
}

// deployConvBenchNet builds a small convolutional workload
// (conv→pool→gap→fc with random weights) so the batched-execution
// benchmarks cover the time-multiplexed shared-group path, not just FC
// stages.
func deployConvBenchNet(b *testing.B) *SpikingNet {
	b.Helper()
	m, err := NewModelBuilder("convbench", 2, 10, 10).
		Conv2D(8, 3, 1, 1).ReLU().
		MaxPool(2, 2).
		GlobalAvgPool().
		FC(4).ReLU().
		Build()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mk := func(rows, cols int) [][]float64 {
		w := make([][]float64, rows)
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = (rng.Float64()*2 - 1) / float64(rows)
			}
		}
		return w
	}
	layers := m.WeightLayers()
	sn, err := DeployModel(m, map[string][][]float64{
		layers[0]: mk(2*3*3, 8),
		layers[1]: mk(8, 4),
	})
	if err != nil {
		b.Fatal(err)
	}
	return sn
}

// benchmarkRunBatch measures one executor consuming fixed micro-batches
// through the batched kernel path. The samples/s metric is comparable
// across batch sizes: batch 1 is the per-item baseline the batched rows
// are judged against.
func benchmarkRunBatch(b *testing.B, sn *SpikingNet, mode synth.ExecMode, batch int) {
	window := sn.Window()
	rng := rand.New(rand.NewSource(3))
	// Every batch size cycles through the same 64-vector pool (64 is a
	// multiple of each size), so simulation cost — which depends on
	// spike density — is sampled identically and samples/s compares
	// cleanly across sub-benchmarks.
	pool := make([][]int, 64)
	for i := range pool {
		in := make([]int, sn.prog.InputSize)
		for j := range in {
			in[j] = rng.Intn(window + 1)
		}
		pool[i] = in
	}
	ex, err := synth.NewExecutor(sn.prog, synth.RunOptions{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	cur := make([][]int, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cur {
			cur[j] = pool[(i*batch+j)%len(pool)]
		}
		if _, err := ex.RunBatch(cur); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkRunBatch sweeps batch sizes over the MLP and conv workloads in
// both deterministic modes; compare the samples/s metric within one
// workload+mode group to read the batched-vs-serial throughput ratio.
func BenchmarkRunBatch(b *testing.B) {
	mlp, _ := deployBenchNet(b)
	conv := deployConvBenchNet(b)
	for _, wl := range []struct {
		name string
		sn   *SpikingNet
	}{{"mlp", mlp}, {"conv", conv}} {
		for _, mode := range []struct {
			name string
			mode synth.ExecMode
		}{{"reference", synth.ModeReference}, {"spiking", synth.ModeSpiking}} {
			for _, batch := range []int{1, 4, 16, 64} {
				b.Run(fmt.Sprintf("%s/%s/batch%d", wl.name, mode.name, batch), func(b *testing.B) {
					benchmarkRunBatch(b, wl.sn, mode.mode, batch)
				})
			}
		}
	}
}

// benchmarkEngine drives the batched engine from GOMAXPROCS submitter
// goroutines — the concurrent-serving counterpart of the serial
// BenchmarkSpikingInference loop above.
func benchmarkEngine(b *testing.B, workers, maxBatch int) {
	sn, train := deployBenchNet(b)
	eng, err := NewEngine(sn, EngineConfig{Workers: workers, MaxBatch: maxBatch, Mode: ModeSpiking})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	// Serving benchmarks need real concurrent load: enough in-flight
	// clients that micro-batches fill on size rather than idling until
	// the flush deadline.
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := eng.Classify(context.Background(), train.X[i%len(train.X)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkEngineClassify1(b *testing.B) { benchmarkEngine(b, 1, 8) }
func BenchmarkEngineClassify4(b *testing.B) { benchmarkEngine(b, 4, 8) }
func BenchmarkEngineClassify8(b *testing.B) { benchmarkEngine(b, 8, 8) }

// BenchmarkEngineClassify4Batch16 is the headline batched-serving
// configuration: 4 workers consuming micro-batches of 16 through
// Executor.RunBatch.
func BenchmarkEngineClassify4Batch16(b *testing.B) { benchmarkEngine(b, 4, 16) }
