package fpsa

import (
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/experiments"
)

// One benchmark per paper artifact: running `go test -bench=.` regenerates
// every table and figure of the evaluation. The rendered outputs come from
// cmd/fpsa-bench; these measure the regeneration cost and pin the drivers
// into the benchmark harness as the task requires.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(device.Params45nm)
		if len(rows) != 7 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(device.Params45nm)
		if r.DensityGain < 30 {
			b.Fatal("density gain")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(64)
		if err != nil || len(rows) != 7 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.SpeedupAtMatchedArea < 100 {
			b.Fatal("speedup collapsed")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7()
		if err != nil || len(rows) != 3 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(experiments.Figure9Options{Trials: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// Supporting micro-benchmarks: the stack's heavy phases in isolation.

func BenchmarkCompileVGG16(b *testing.B) {
	m, err := LoadBenchmark("VGG16")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(m, Config{Duplication: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceAndRouteLeNet(b *testing.B) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		b.Fatal(err)
	}
	d, err := Compile(m, Config{Duplication: 4, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.PlaceAndRoute(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpikingInference(b *testing.B) {
	ds := SyntheticDataset(5, 300, 16, 4, 0.08)
	train, _ := ds.Split(0.9)
	net, err := TrainMLP(5, []int{16, 24, 4}, train, 20)
	if err != nil {
		b.Fatal(err)
	}
	sn, err := net.Deploy()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sn.Classify(train.X[i%len(train.X)], ModeSpiking); err != nil {
			b.Fatal(err)
		}
	}
}
