package fpsa

import (
	"context"
	"fmt"

	"fpsa/internal/synth"
)

// NewNet derives a runnable SpikingNet from the compiled deployment.
// With weights nil it uses the weights registered at compile time
// (WithWeights / WithWeightSource) and memoizes the result, so every
// net and engine derived from one Deployment shares one synthesized
// program; explicit weights synthesize a fresh, independent net. The
// net's programming-variation seed comes from WithSeed, so the whole
// execution configuration flows from the compile. A deployment with no
// weights anywhere returns ErrModelInvalid.
func (d *Deployment) NewNet(weights map[string][][]float64) (*SpikingNet, error) {
	if weights != nil {
		return d.buildNet(func(layer string) [][]float64 { return weights[layer] })
	}
	d.netMu.Lock()
	defer d.netMu.Unlock()
	if d.net != nil {
		return d.net, nil
	}
	if d.weights == nil {
		return nil, fmt.Errorf("%w: deployment of %s has no weights; pass them to NewNet or compile with WithWeights/WithWeightSource",
			ErrModelInvalid, d.model.Name())
	}
	sn, err := d.buildNet(d.weights)
	if err != nil {
		return nil, err
	}
	d.net = sn
	return sn, nil
}

// buildNet synthesizes the functional program for this deployment's
// model under the given weight source.
func (d *Deployment) buildNet(src WeightSource) (*SpikingNet, error) {
	opts := synth.DefaultOptions()
	opts.Weights = src
	_, prog, err := synth.Compile(d.model.graph, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelInvalid, err)
	}
	// The compiled fault scenario rides along so every net and engine of
	// this deployment programs the same faulted hardware the mapper
	// steered placement around.
	sn := &SpikingNet{prog: prog, faults: d.cfg.Faults.deviceModel()}
	sn.SetSeed(d.cfg.Seed)
	return sn, nil
}

// NewEngine derives a serving engine from the compiled deployment: the
// net comes from NewNet (compile-registered weights), and the chip
// partition flows from the compile — an engine over a sharded
// deployment pipelines across the compiled chip count under the
// compiled WithShardPolicy, so Compile is the single source of truth
// for how many chips serve and which objective cuts them. (The stage
// boundaries themselves are re-derived on the program's stage list —
// the serving-side twin of the compile's group chain — and outputs are
// bit-identical under every cut.) WithEngineChips may override the
// count only on a single-chip deployment (a serving-side pipelining
// experiment); an override that disagrees with a multi-chip deployment
// returns ErrChipConflict.
// Defaults are the serving sweet spot (4 workers, micro-batches of 8,
// ModeSpiking); shape them with WithWorkers, WithMaxBatch,
// WithFlushInterval, WithQueueDepth and WithMode. ctx is checked
// before and after the net is derived — a cancelled context fails with
// ctx.Err() instead of starting workers (synthesis itself is quick and
// runs to completion; only PlaceAndRoute carries checkpointed
// cancellation). Close the engine when done.
func (d *Deployment) NewEngine(ctx context.Context, opts ...EngineOption) (*Engine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set := engineSettings{cfg: defaultEngineConfig()}
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	cfg := set.cfg
	if set.chipsSet {
		if d.Chips() > 1 && cfg.Chips != d.Chips() {
			return nil, fmt.Errorf("%w: deployment of %s compiled across %d chips but the engine requested %d; drop WithEngineChips to inherit the compiled partition",
				ErrChipConflict, d.model.Name(), d.Chips(), cfg.Chips)
		}
	} else {
		cfg.Chips = d.Chips()
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return newEngine(sn, cfg, d.cfg.ShardPolicy.servePolicy())
}
