package fpsa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fpsa/internal/bitstream"
	"fpsa/internal/compilecache"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/mapper"
	"fpsa/internal/netlist"
	"fpsa/internal/perf"
	"fpsa/internal/place"
	"fpsa/internal/route"
	"fpsa/internal/shard"
	"fpsa/internal/synth"
)

// Config controls compilation.
//
// Deprecated: new code passes functional options to Compile
// (WithDuplication, WithChips, WithCache, …) instead of a Config
// literal; the struct remains as the carrier behind those options and
// the legacy CompileConfig entry point.
type Config struct {
	// Duplication is the model duplication degree (§5.2 of the paper);
	// 0 means 1×.
	Duplication int
	// Tracks overrides the routing channel width (0 = default 2048).
	Tracks int
	// LayerDup maps model layer names to per-layer duplication degrees,
	// overriding Duplication for those layers' weight groups (clamped to
	// each group's reuse degree). The autotuner's output; nil keeps the
	// uniform Duplication policy bit-exact. See WithLayerDuplication.
	LayerDup map[string]int
	// LayerTracks maps model layer names to per-layer routing channel
	// requirements. Each chip's channel width is the maximum requirement
	// among the layers it hosts; a chip hosting any unassigned layer also
	// honors the global Tracks (or its default). See WithLayerTracks.
	LayerTracks map[string]int
	// ShardCuts pins the multi-chip partition at exactly these group-chain
	// cut positions (strictly increasing, each in (0, groups)), bypassing
	// the partition search; len(ShardCuts)+1 chips result. The autotuner's
	// shard candidates; empty keeps the searched partition. See
	// WithShardCuts.
	ShardCuts []int
	// Seed drives placement annealing.
	Seed int64
	// PlacementSeeds is the size of the multi-seed annealing portfolio
	// PlaceAndRoute runs (0 or 1 = a single run, the classic behavior).
	// Portfolio run i anneals independently with seed Seed+1+i; runs
	// whose checkpoint cost falls a margin behind the portfolio's
	// best-so-far are cancelled early (see place.PortfolioOptions), and
	// the cheapest placement wins deterministically.
	PlacementSeeds int
	// Parallelism bounds the worker goroutines PlaceAndRoute uses for
	// both the annealing portfolio and per-iteration net routing
	// (0 = GOMAXPROCS). It changes wall-clock only, never results, and is
	// therefore excluded from the deployment-cache key.
	Parallelism int
	// Cache, when non-nil, memoizes placement/routing/bitstream artifacts
	// content-addressed by the model structure and this Config: a
	// cache-hit PlaceAndRoute skips both phases entirely and Bitstream is
	// generated at most once per deployment key. Share one cache across
	// every Compile in the process (see NewCompileCache and
	// DeployCache.Artifacts). Each shard of a multi-chip deployment is a
	// separate cache entry, so shards compile, cache and revalidate
	// independently.
	Cache *CompileCache
	// MaxChips allows the deployment to span up to this many chips
	// (0 or 1 = the classic single-chip compile). A model whose PE
	// demand exceeds ChipCapacity is an error on one chip; with
	// MaxChips ≥ 2 the core-op graph is partitioned across chips
	// instead (see ShardPolicy) and each chip is placed, routed and
	// configured independently. With ChipCapacity 0 the model is spread
	// over exactly MaxChips chips (clamped to the group count).
	MaxChips int
	// ChipCapacity bounds one chip's PE count (0 = unbounded). The
	// evaluated fabric has no hard limit — area simply grows — so the
	// bound is a deployment policy: the reticle/yield-limited die size a
	// fleet actually fabricates.
	ChipCapacity int
	// ShardPolicy selects the multi-chip partitioning objective
	// (ShardAuto = minimal inter-chip traffic for compilation).
	ShardPolicy ShardPolicy
	// Faults is the deployment's non-ideal device scenario: deterministic
	// stuck cells, drift and read variation applied when crossbars are
	// programmed, steered around by the mapper's spare-row/column
	// remapping and keyed into the compile cache. nil (or an all-zero
	// map) is bit-identical to ideal devices. See WithFaultModel and
	// WithFaultMap.
	Faults *FaultMap
}

// DefaultConfig returns a 1× deployment on the default fabric.
//
// Deprecated: Compile without options compiles a 1× deployment on the
// default fabric; there is nothing left to construct.
func DefaultConfig() Config { return Config{Duplication: 1} }

// validate rejects option inputs that cannot mean anything — negative
// knobs, non-positive per-layer assignments, non-increasing cut lists —
// before they flow silently into allocation or partitioning. Zero stays
// "use the default" everywhere, as the option docs promise. Every
// rejection wraps ErrInvalidArgument.
func (c Config) validate() error {
	for _, k := range []struct {
		name string
		v    int
	}{
		{"WithDuplication", c.Duplication},
		{"WithTracks", c.Tracks},
		{"WithPlacementSeeds", c.PlacementSeeds},
		{"WithParallelism", c.Parallelism},
		{"WithChips", c.MaxChips},
		{"WithChipCapacity", c.ChipCapacity},
	} {
		if k.v < 0 {
			return fmt.Errorf("%w: %s(%d): value must be ≥ 0 (0 = default)", ErrInvalidArgument, k.name, k.v)
		}
	}
	for layer, dup := range c.LayerDup {
		if dup < 1 {
			return fmt.Errorf("%w: WithLayerDuplication: layer %q degree %d must be ≥ 1", ErrInvalidArgument, layer, dup)
		}
	}
	for layer, tracks := range c.LayerTracks {
		if tracks < 1 {
			return fmt.Errorf("%w: WithLayerTracks: layer %q channel width %d must be ≥ 1", ErrInvalidArgument, layer, tracks)
		}
	}
	for i, cut := range c.ShardCuts {
		if cut < 1 {
			return fmt.Errorf("%w: WithShardCuts: cut %d must be ≥ 1", ErrInvalidArgument, cut)
		}
		if i > 0 && cut <= c.ShardCuts[i-1] {
			return fmt.Errorf("%w: WithShardCuts: cuts %v must be strictly increasing", ErrInvalidArgument, c.ShardCuts)
		}
	}
	if err := c.Faults.validate(); err != nil {
		return err
	}
	return nil
}

// validate rejects fault-scenario parameters outside their physical
// domains. NaN is rejected everywhere: a NaN rate or drift would
// silently disable comparisons and corrupt the deterministic draws.
func (f *FaultMap) validate() error {
	if f == nil {
		return nil
	}
	for _, k := range []struct {
		name     string
		v        float64
		lo, hi   float64
		openHigh bool
	}{
		{"fault rate", f.Rate, 0, 1, false},
		{"stuck-high fraction", f.StuckHighFrac, 0, 1, false},
		{"drift", f.Drift, 0, 1, true},
		{"read sigma", f.ReadSigma, 0, math.Inf(1), false},
	} {
		if math.IsNaN(k.v) || k.v < k.lo || k.v > k.hi || (k.openHigh && k.v == k.hi) {
			return fmt.Errorf("%w: WithFaultMap: %s %v outside its valid range", ErrInvalidArgument, k.name, k.v)
		}
	}
	// Sorted iteration: with several bad entries the reported one must
	// not depend on map order.
	layers := make([]string, 0, len(f.LayerSeeds))
	for layer := range f.LayerSeeds {
		layers = append(layers, layer)
	}
	sort.Strings(layers)
	for _, layer := range layers {
		if s := f.LayerSeeds[layer]; s < 0 {
			return fmt.Errorf("%w: WithFaultMap: layer %q seed %d must be ≥ 0", ErrInvalidArgument, layer, s)
		}
	}
	return nil
}

// cacheSegment renders the scenario canonically for the compile-cache
// key, so faulted and ideal artifacts (or two different scenarios) never
// collide. Inactive maps render empty — bit-identical hardware must hit
// the same cache entry as no map at all.
func (f *FaultMap) cacheSegment() string {
	if !f.active() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rate=%s,seed=%d,high=%s,drift=%s,rsig=%s,remap=%t",
		strconv.FormatFloat(f.Rate, 'g', -1, 64), f.Seed,
		strconv.FormatFloat(f.StuckHighFrac, 'g', -1, 64),
		strconv.FormatFloat(f.Drift, 'g', -1, 64),
		strconv.FormatFloat(f.ReadSigma, 'g', -1, 64), !f.NoRemap)
	if len(f.LayerSeeds) > 0 {
		layers := make([]string, 0, len(f.LayerSeeds))
		for layer := range f.LayerSeeds {
			layers = append(layers, layer)
		}
		sort.Strings(layers)
		b.WriteString(",layers=")
		for i, layer := range layers {
			if i > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(&b, "%s:%d", layer, f.LayerSeeds[layer])
		}
	}
	return b.String()
}

// checkLayerNames rejects per-layer assignments naming layers the
// synthesized model does not have — a silent no-op otherwise, which for
// an autotuned assignment would mean silently compiling the wrong thing.
func checkLayerNames(co *coreop.Graph, cfg Config) error {
	var layerSeeds map[string]int64
	if cfg.Faults != nil {
		layerSeeds = cfg.Faults.LayerSeeds
	}
	if len(cfg.LayerDup) == 0 && len(cfg.LayerTracks) == 0 && len(layerSeeds) == 0 {
		return nil
	}
	layers := make(map[string]bool, len(co.Groups))
	for _, grp := range co.Groups {
		layers[grp.Layer] = true
	}
	for _, m := range []struct {
		opt string
		kv  map[string]int
	}{
		{"WithLayerDuplication", cfg.LayerDup},
		{"WithLayerTracks", cfg.LayerTracks},
	} {
		for layer := range m.kv {
			if !layers[layer] {
				return fmt.Errorf("%w: %s: layer %q not in model", ErrInvalidArgument, m.opt, layer)
			}
		}
	}
	for layer := range layerSeeds {
		if !layers[layer] {
			return fmt.Errorf("%w: WithFaultMap: layer %q not in model", ErrInvalidArgument, layer)
		}
	}
	return nil
}

// Deployment is a model mapped onto the FPSA fabric.
type Deployment struct {
	model  Model
	cfg    Config
	coreop *coreop.Graph
	alloc  mapper.Allocation
	nl     *netlist.Netlist
	params device.Params

	// Multi-chip partition (MaxChips ≥ 2): the group-chain plan and one
	// compiled sub-deployment per chip. Empty for single-chip.
	plan   *shard.Plan
	shards []*deployShard

	// weights is the WithWeights/WithWeightSource registration; net
	// memoizes the SpikingNet NewNet derives from it so every engine of
	// this deployment shares one synthesized program.
	weights WeightSource
	netMu   sync.Mutex
	net     *SpikingNet

	// Last place & route artifacts (set by PlaceAndRoute), consumed by
	// Bitstream. lastArtifacts additionally memoizes the generated
	// bitstream — per deployment when uncached, shared across every
	// deployment of the key when a cache supplied the artifacts.
	// Generation is deterministic, so repeat Bitstream calls returning
	// the memo are indistinguishable from regeneration.
	lastChip      fabric.Chip
	lastPlacement *place.Placement
	lastRoute     *route.Result
	lastArtifacts *compilecache.Artifacts
}

// deployShard is one chip's slice of a sharded deployment: the sub
// core-op graph (cross-chip dependencies lifted to chip I/O), its slice
// of the global allocation, its netlist, and — after PlaceAndRoute — its
// own artifacts.
type deployShard struct {
	lo, hi    int // global group ID range [lo, hi)
	co        *coreop.Graph
	alloc     mapper.Allocation
	nl        *netlist.Netlist
	artifacts *compilecache.Artifacts
}

// Compile synthesizes, allocates and maps a model, returning the
// Deployment every later phase hangs off: Performance and PlaceAndRoute
// evaluate it, Bitstream configures it, NewNet and NewEngine run it.
// Behavior is shaped by functional options — WithDuplication, WithChips,
// WithCache, WithPlacementSeeds, WithParallelism, WithWeights, … — so
// the chip partition, duplication and cache chosen here flow through to
// execution instead of being re-declared per subsystem. With WithChips
// ≥ 2 (or when WithChipCapacity forces it) the model is additionally
// partitioned into per-chip shards, each with its own netlist.
//
// ctx bounds the compile; cancellation or deadline expiry aborts between
// phases and returns ctx.Err(). Errors wrap the package's taxonomy:
// ErrModelInvalid for a model the stack rejects, ErrCapacity when the
// model does not fit the requested chips.
func Compile(ctx context.Context, m Model, opts ...Option) (*Deployment, error) {
	var set compileSettings
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	return compile(ctx, m, set)
}

// CompileConfig is the legacy struct-literal entry point.
//
// Deprecated: use Compile with functional options (WithConfig bridges an
// existing Config).
func CompileConfig(m Model, cfg Config) (*Deployment, error) {
	return Compile(context.Background(), m, WithConfig(cfg))
}

// compile is the shared back end of Compile and the deprecated wrappers.
func compile(ctx context.Context, m Model, set compileSettings) (*Deployment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := m.valid(); err != nil {
		return nil, err
	}
	if set.faultModelSet && set.faultMapSet {
		return nil, fmt.Errorf("%w: WithFaultModel and WithFaultMap both given; pass one fault scenario", ErrInvalidArgument)
	}
	if err := set.cfg.validate(); err != nil {
		return nil, err
	}
	cfg := set.cfg
	if cfg.Duplication <= 0 {
		cfg.Duplication = 1
	}
	if cfg.PlacementSeeds <= 0 {
		cfg.PlacementSeeds = 1
	}
	if cfg.MaxChips <= 0 {
		cfg.MaxChips = 1
	}
	if want := len(cfg.ShardCuts) + 1; want > 1 && cfg.MaxChips < want {
		// Explicit cuts define the chip count; WithChips need not repeat it.
		cfg.MaxChips = want
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := device.Params45nm
	co, err := synth.Synthesize(m.graph, synth.Options{Params: params})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelInvalid, err)
	}
	if err := checkLayerNames(co, cfg); err != nil {
		return nil, err
	}
	alloc, err := mapper.AllocateAssigned(co, cfg.Duplication, cfg.LayerDup)
	if err != nil {
		// Allocation rejects resource requests the model cannot sustain
		// (duplication beyond the maximum reuse degree).
		return nil, fmt.Errorf("%w: %w", ErrCapacity, err)
	}
	d := &Deployment{model: m, cfg: cfg, coreop: co, alloc: alloc, params: params, weights: set.weights}
	if cfg.ChipCapacity > 0 && alloc.TotalPEs > cfg.ChipCapacity && cfg.MaxChips <= 1 {
		return nil, fmt.Errorf("%w: model %s needs %d PEs, exceeding one chip's capacity of %d; compile with WithChips(n ≥ 2) to shard it",
			ErrCapacity, m.Name(), alloc.TotalPEs, cfg.ChipCapacity)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.MaxChips > 1 {
		if err := d.shardify(); err != nil {
			return nil, err
		}
	}
	if len(d.shards) == 0 {
		nl, err := mapper.BuildNetlistFaulted(co, alloc, params, nil, cfg.Faults.deviceModel(), 0)
		if err != nil {
			return nil, err
		}
		d.nl = nl
	}
	return d, nil
}

// shardify partitions the core-op group chain across chips and builds
// one netlist per shard. Groups are in topological order, so contiguous
// segments always yield a feed-forward chip pipeline; per-group load is
// its allocated PE copies and a producer's per-sample output traffic
// (reuse × columns) is charged on every link it crosses.
func (d *Deployment) shardify() error {
	groups := d.coreop.Groups
	n := len(groups)
	weights, signals := shardChain(groups, d.alloc.Dup)
	var plan *shard.Plan
	if cuts := d.cfg.ShardCuts; len(cuts) > 0 {
		// Pinned partition: the caller (typically the autotuner) chose the
		// cut positions; only validate and account them.
		bounds := make([]int, 0, len(cuts)+2)
		bounds = append(bounds, 0)
		bounds = append(bounds, cuts...)
		bounds = append(bounds, n)
		if cuts[len(cuts)-1] >= n {
			return fmt.Errorf("%w: WithShardCuts: cut %d outside the %d-group chain", ErrInvalidArgument, cuts[len(cuts)-1], n)
		}
		var err error
		plan, err = shard.PlanFromBounds(weights, signals, bounds, d.cfg.ChipCapacity)
		if err != nil {
			return fmt.Errorf("%w: cannot shard %s at cuts %v: %w", ErrCapacity, d.model.Name(), cuts, err)
		}
	} else {
		policy, err := d.cfg.ShardPolicy.compilePolicy()
		if err != nil {
			return err
		}
		maxChips := d.cfg.MaxChips
		if maxChips > n {
			maxChips = n
		}
		minChips := 1
		if cap := d.cfg.ChipCapacity; cap > 0 {
			minChips = (d.alloc.TotalPEs + cap - 1) / cap
			if minChips > maxChips {
				return fmt.Errorf("%w: model %s needs %d PEs — at least %d chips of capacity %d — but WithChips allows %d",
					ErrCapacity, d.model.Name(), d.alloc.TotalPEs, minChips, d.cfg.ChipCapacity, d.cfg.MaxChips)
			}
		} else {
			// No capacity bound: the user asked for this many chips.
			minChips = maxChips
		}
		for k := minChips; k <= maxChips; k++ {
			plan, err = shard.Partition(weights, signals, nil, shard.Options{
				Chips:    k,
				Capacity: d.cfg.ChipCapacity,
				Policy:   policy,
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("%w: cannot shard %s across ≤ %d chips: %w", ErrCapacity, d.model.Name(), maxChips, err)
		}
	}
	if plan.Chips() == 1 {
		// Degenerate request (one group, or MaxChips clamped to 1):
		// stay on the classic single-chip path.
		return nil
	}

	d.plan = plan
	d.shards = make([]*deployShard, plan.Chips())
	for k := range d.shards {
		lo, hi := plan.Bounds[k], plan.Bounds[k+1]
		sub := &coreop.Graph{Name: fmt.Sprintf("%s.chip%d", d.coreop.Name, k)}
		for _, grp := range groups[lo:hi] {
			g := *grp // shallow copy; weights/deps slices re-pointed below
			g.Deps = nil
			for _, dep := range grp.Deps {
				if dep >= lo {
					g.Deps = append(g.Deps, dep-lo)
				}
				// Cross-chip dependencies become chip inputs, fed over
				// the inter-chip link; they are no longer nets of this
				// chip's netlist.
			}
			sub.AddGroup(&g)
		}
		sum := 0
		for _, w := range weights[lo:hi] {
			sum += w
		}
		alloc := mapper.Allocation{
			ModelDup:   d.alloc.ModelDup,
			Dup:        d.alloc.Dup[lo:hi],
			Iterations: d.alloc.Iterations[lo:hi],
			TotalPEs:   sum,
		}
		// unitBase = lo: the sub-graph renumbers its groups from 0, but
		// fault maps key on the global group ID the executor programs.
		nl, err := mapper.BuildNetlistFaulted(sub, alloc, d.params, nil, d.cfg.Faults.deviceModel(), lo)
		if err != nil {
			return fmt.Errorf("fpsa: shard %d: %w", k, err)
		}
		d.shards[k] = &deployShard{lo: lo, hi: hi, co: sub, alloc: alloc, nl: nl}
	}
	return nil
}

// shardChain derives the chain partitioner's inputs from a core-op group
// list and its per-group duplication vector: per-group PE load, and the
// signal chain — a producer's per-sample output traffic (reuse × columns)
// charged on every link it crosses, external model input reaching the
// first consumer's chip, consumer-less outputs carried off the last chip.
// Shared by shardify and the autotuner's cut candidates so a searched cut
// is accounted exactly like a compiled one.
func shardChain(groups []*coreop.Group, dup []int) (weights []int, signals []shard.Signal) {
	n := len(groups)
	weights = make([]int, n)
	copy(weights, dup)
	lastUse := make([]int, n)
	hasDeps := make([]bool, n)
	for i := range lastUse {
		lastUse[i] = i
	}
	for vi, grp := range groups {
		for _, ui := range grp.Deps {
			if vi > lastUse[ui] {
				lastUse[ui] = vi
			}
			hasDeps[vi] = true
		}
	}
	for i, grp := range groups {
		// Per-sample value traffic out of the group; consumer-less
		// groups carry the model's outputs off the last chip.
		last := lastUse[i]
		if last == i {
			last = n - 1
		}
		signals = append(signals, shard.Signal{Prod: i, Last: last, Width: grp.Reuse * grp.Cols})
		if !hasDeps[i] {
			// External model input must reach this group's chip.
			signals = append(signals, shard.Signal{Prod: -1, Last: i, Width: grp.Rows})
		}
	}
	return weights, signals
}

// Blocks returns the function-block inventory (summed over every chip of
// a sharded deployment).
func (d *Deployment) Blocks() (pes, smbs, clbs int) {
	if len(d.shards) == 0 {
		return d.nl.Counts()
	}
	for _, sh := range d.shards {
		p, s, c := sh.nl.Counts()
		pes, smbs, clbs = pes+p, smbs+s, clbs+c
	}
	return pes, smbs, clbs
}

// AreaMM2 returns the chip area (blocks; the mrFPGA routing fabric stacks
// above them), summed over every chip of a sharded deployment.
func (d *Deployment) AreaMM2() float64 {
	if len(d.shards) == 0 {
		return d.nl.AreaUM2(d.params) * 1e-6
	}
	total := 0.0
	for _, sh := range d.shards {
		total += sh.nl.AreaUM2(d.params) * 1e-6
	}
	return total
}

// CoreOps returns the synthesized weight-group count and total core-op
// executions per sample.
func (d *Deployment) CoreOps() (groups int, opsPerSample int64) {
	return len(d.coreop.Groups), d.coreop.TotalCoreOps()
}

// PerfSummary is a deployment's modeled performance.
type PerfSummary struct {
	ThroughputSPS    float64
	LatencyUS        float64
	PerfOPS          float64
	DensityOPSmm2    float64
	PeakOPS          float64
	SpatialBoundOPS  float64
	TemporalBoundOPS float64
	CompNSPerVMM     float64
	CommNSPerVMM     float64
	// EnergyUJ is the per-sample energy (Table 1 per-block energies; PE
	// + SMB + CLB, routing excluded); PowerMW multiplies by throughput.
	EnergyUJ float64
	PowerMW  float64
	// Chips is the deployment's chip count; LinkNSPerSample is the
	// per-sample inter-chip transfer time charged into latency (both
	// trivial — 1 and 0 — for a single-chip deployment).
	Chips           int
	LinkNSPerSample float64
}

// String renders the summary.
func (p PerfSummary) String() string {
	out := fmt.Sprintf("throughput %.4g samples/s, latency %.4g us, perf %.4g OPS (%.4g OPS/mm2), energy %.4g uJ/sample (%.4g mW), bounds peak %.3g / spatial %.3g / temporal %.3g",
		p.ThroughputSPS, p.LatencyUS, p.PerfOPS, p.DensityOPSmm2,
		p.EnergyUJ, p.PowerMW,
		p.PeakOPS, p.SpatialBoundOPS, p.TemporalBoundOPS)
	if p.Chips > 1 {
		out += fmt.Sprintf(", %d chips (link %.4g ns/sample)", p.Chips, p.LinkNSPerSample)
	}
	return out
}

// Performance evaluates the deployment with the calibrated mean routed hop
// count; PerformanceWithHops substitutes a measured value (see
// PlaceAndRoute).
func (d *Deployment) Performance() (PerfSummary, error) { return d.PerformanceWithHops(0) }

// PerformanceWithHops evaluates the deployment using the given mean routed
// hop count (0 = the calibrated default). For a sharded deployment the
// model also charges each inter-chip link's per-sample transfer (see
// PerfSummary.LinkNSPerSample).
func (d *Deployment) PerformanceWithHops(hops int) (PerfSummary, error) {
	in := perf.Input{
		Model:   d.model.graph,
		CoreOps: d.coreop,
		Params:  d.params,
		Dup:     d.cfg.Duplication,
		Assign:  d.alloc.Dup,
		Hops:    hops,
	}
	if d.plan != nil {
		in.CutWidths = d.plan.CutTraffic
	}
	r, err := perf.Evaluate(in, perf.TargetFPSA)
	if err != nil {
		return PerfSummary{}, err
	}
	return PerfSummary{
		ThroughputSPS:    r.ThroughputSPS,
		LatencyUS:        r.LatencyUS,
		PerfOPS:          r.PerfOPS,
		DensityOPSmm2:    r.DensityOPSmm2,
		PeakOPS:          r.PeakOPS,
		SpatialBoundOPS:  r.SpatialBoundOPS,
		TemporalBoundOPS: r.TemporalBoundOPS,
		CompNSPerVMM:     r.CompNSPerVMM,
		CommNSPerVMM:     r.CommNSPerVMM,
		EnergyUJ:         r.Energy.TotalUJ(),
		PowerMW:          r.PowerMW,
		Chips:            r.Chips,
		LinkNSPerSample:  r.LinkNSPerSample,
	}, nil
}

// PRStats reports a placement & routing run.
type PRStats struct {
	ChipSide       int
	Converged      bool
	Iterations     int
	MeanHops       float64
	MaxHops        int
	ChannelsNeeded int
	// PlacementMoves sums annealing moves across the whole portfolio (the
	// work spent); WirelengthCost is the winning placement's exact cost.
	PlacementMoves int
	WirelengthCost float64
	// Restarts is the portfolio size the placement was chosen from.
	Restarts int
	// FromCache reports that the deployment cache supplied the artifacts
	// and no annealing or routing ran. For a sharded deployment it is
	// true only when every shard hit the cache.
	FromCache bool
	// Chips is the number of chips placed and routed (1 for a
	// single-chip deployment). For a sharded deployment ChipSide,
	// MaxHops and ChannelsNeeded report the worst chip, MeanHops the
	// net-weighted mean over chips, and the move/cost/iteration counters
	// sum the per-chip runs.
	Chips int
}

// String renders the stats.
func (s PRStats) String() string {
	out := fmt.Sprintf("chip %dx%d, routed converged=%v in %d iters, hops mean %.1f max %d, channels needed %d",
		s.ChipSide, s.ChipSide, s.Converged, s.Iterations, s.MeanHops, s.MaxHops, s.ChannelsNeeded)
	if s.Chips > 1 {
		out = fmt.Sprintf("%d chips, worst %s", s.Chips, out)
	}
	if s.Restarts > 1 {
		out += fmt.Sprintf(", portfolio %d seeds", s.Restarts)
	}
	if s.FromCache {
		out += " (cached)"
	}
	return out
}

// BitstreamInfo summarizes a generated, verified FPSA configuration.
type BitstreamInfo struct {
	// ProgrammedCells is the number of low-resistance mrFPGA ReRAM
	// cells (switch-box plus connection-box).
	ProgrammedCells int
	SBCells         int
	CBCells         int
	// TrackOccupancy is the busiest channel's used tracks.
	TrackOccupancy int
}

// String renders the info.
func (b BitstreamInfo) String() string {
	return fmt.Sprintf("configuration: %d programmed cells (%d SB + %d CB), busiest channel %d tracks",
		b.ProgrammedCells, b.SBCells, b.CBCells, b.TrackOccupancy)
}

// Bitstream generates and verifies the FPSA configuration — the final
// artifact of the stack (Figure 5) — for the last PlaceAndRoute run. The
// verification interprets only the programmed ReRAM cells and proves every
// net's source reaches every sink with no shorts. A sharded deployment
// generates and verifies one configuration per chip; the info sums the
// programmed cells and reports the busiest chip's track occupancy. ctx
// bounds the generation: cancellation aborts between chips and returns
// ctx.Err().
func (d *Deployment) Bitstream(ctx context.Context) (BitstreamInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return BitstreamInfo{}, err
	}
	if len(d.shards) > 0 {
		var total BitstreamInfo
		for k, sh := range d.shards {
			if err := ctx.Err(); err != nil {
				return BitstreamInfo{}, err
			}
			if sh.artifacts == nil {
				return BitstreamInfo{}, fmt.Errorf("%w: run PlaceAndRoute before Bitstream", ErrNotPlaced)
			}
			cfg, err := sh.artifacts.Bitstream(func() (*bitstream.Config, error) {
				return generateBitstream(sh.nl, sh.artifacts)
			})
			if err != nil {
				return BitstreamInfo{}, fmt.Errorf("fpsa: shard %d: %w", k, err)
			}
			total.ProgrammedCells += cfg.CellCount()
			total.SBCells += len(cfg.SBCells)
			total.CBCells += len(cfg.CBCells)
			if occ := cfg.TrackOccupancy(); occ > total.TrackOccupancy {
				total.TrackOccupancy = occ
			}
		}
		return total, nil
	}
	if d.lastRoute == nil {
		return BitstreamInfo{}, fmt.Errorf("%w: run PlaceAndRoute before Bitstream", ErrNotPlaced)
	}
	gen := func() (*bitstream.Config, error) {
		cfg, err := bitstream.Generate(d.nl, d.lastPlacement, d.lastRoute, d.lastChip)
		if err != nil {
			return nil, err
		}
		if err := cfg.Verify(d.nl); err != nil {
			return nil, fmt.Errorf("fpsa: generated configuration failed verification: %w", err)
		}
		return cfg, nil
	}
	var cfg *bitstream.Config
	var err error
	if d.lastArtifacts != nil {
		// Cached deployments generate (and verify) the configuration at
		// most once per key; every later Bitstream call shares it.
		cfg, err = d.lastArtifacts.Bitstream(gen)
	} else {
		cfg, err = gen()
	}
	if err != nil {
		return BitstreamInfo{}, err
	}
	return BitstreamInfo{
		ProgrammedCells: cfg.CellCount(),
		SBCells:         len(cfg.SBCells),
		CBCells:         len(cfg.CBCells),
		TrackOccupancy:  cfg.TrackOccupancy(),
	}, nil
}

// generateBitstream produces one chip's verified configuration from its
// netlist and artifacts.
func generateBitstream(nl *netlist.Netlist, art *compilecache.Artifacts) (*bitstream.Config, error) {
	cfg, err := bitstream.Generate(nl, art.Placement, art.Route, art.Chip)
	if err != nil {
		return nil, err
	}
	if err := cfg.Verify(nl); err != nil {
		return nil, fmt.Errorf("generated configuration failed verification: %w", err)
	}
	return cfg, nil
}

// PlaceAndRoute runs multi-seed simulated-annealing placement and
// parallel PathFinder routing on the deployment's netlist and reports the
// measured communication geometry. WithPlacementSeeds sets the annealing
// portfolio size and WithParallelism the worker count; the result is
// deterministic for a fixed (seed, portfolio size) regardless of
// parallelism. With WithCache, the artifacts are served
// content-addressed — a repeat deployment of the same model and options
// skips placement and routing entirely (PRStats.FromCache). A sharded
// deployment places and routes every chip concurrently, each shard a
// separate cache entry; the stats aggregate the per-chip runs (see
// PRStats.Chips). Intended for small and medium deployments (hundreds of
// blocks); the large zoo models use the calibrated hop estimate instead.
//
// ctx bounds the run: cancellation or deadline expiry aborts the
// annealing portfolio at its next cost checkpoint and the router at its
// next negotiation checkpoint, returning ctx.Err(). An uncancelled run
// is unaffected — results are bit-identical with or without a deadline.
// A cancelled run caches nothing, so a later call recomputes.
func (d *Deployment) PlaceAndRoute(ctx context.Context) (PRStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(d.shards) > 0 {
		return d.placeAndRouteShards(ctx)
	}
	var art *compilecache.Artifacts
	var hit bool
	var err error
	tracks := d.tracksForRange(0, len(d.coreop.Groups))
	if d.cfg.Cache != nil {
		art, hit, err = getOrComputeCtx(ctx, d.cfg.Cache, d.cacheKey(-1), func() (*compilecache.Artifacts, error) {
			return d.placeAndRoute(ctx, d.nl, tracks)
		})
	} else {
		art, err = d.placeAndRoute(ctx, d.nl, tracks)
	}
	if err != nil {
		return PRStats{}, err
	}
	d.lastChip, d.lastPlacement, d.lastRoute, d.lastArtifacts = art.Chip, art.Placement, art.Route, art
	return PRStats{
		ChipSide:       art.Chip.W,
		Converged:      art.Route.Converged,
		Iterations:     art.Route.Iterations,
		MeanHops:       art.Route.MeanHops(),
		MaxHops:        art.Route.MaxHops(),
		ChannelsNeeded: art.Route.MaxOccupancy,
		PlacementMoves: art.PlacementMoves,
		WirelengthCost: art.WirelengthCost,
		Restarts:       art.Restarts,
		FromCache:      hit,
		Chips:          1,
	}, nil
}

// placeAndRouteShards compiles every shard concurrently — each chip is an
// independent netlist — and aggregates the per-chip stats. Shards hit the
// deployment cache independently, so re-sharding at a different MaxChips
// only recompiles the chips whose content actually changed.
func (d *Deployment) placeAndRouteShards(ctx context.Context) (PRStats, error) {
	type result struct {
		art *compilecache.Artifacts
		hit bool
		err error
	}
	results := make([]result, len(d.shards))
	var wg sync.WaitGroup
	for k, sh := range d.shards {
		wg.Add(1)
		go func(k int, sh *deployShard) {
			defer wg.Done()
			var r result
			tracks := d.tracksForRange(sh.lo, sh.hi)
			if d.cfg.Cache != nil {
				r.art, r.hit, r.err = getOrComputeCtx(ctx, d.cfg.Cache, d.cacheKey(k), func() (*compilecache.Artifacts, error) {
					return d.placeAndRoute(ctx, sh.nl, tracks)
				})
			} else {
				r.art, r.err = d.placeAndRoute(ctx, sh.nl, tracks)
			}
			results[k] = r
		}(k, sh)
	}
	wg.Wait()
	stats := PRStats{Converged: true, FromCache: true, Chips: len(d.shards)}
	var hopSum float64
	var hopNets int
	for k, r := range results {
		if r.err != nil {
			return PRStats{}, fmt.Errorf("fpsa: shard %d: %w", k, r.err)
		}
		d.shards[k].artifacts = r.art
		art := r.art
		if art.Chip.W > stats.ChipSide {
			stats.ChipSide = art.Chip.W
		}
		stats.Converged = stats.Converged && art.Route.Converged
		stats.Iterations += art.Route.Iterations
		nets := len(art.Route.NetHops)
		hopSum += art.Route.MeanHops() * float64(nets)
		hopNets += nets
		if h := art.Route.MaxHops(); h > stats.MaxHops {
			stats.MaxHops = h
		}
		if art.Route.MaxOccupancy > stats.ChannelsNeeded {
			stats.ChannelsNeeded = art.Route.MaxOccupancy
		}
		stats.PlacementMoves += art.PlacementMoves
		stats.WirelengthCost += art.WirelengthCost
		if art.Restarts > stats.Restarts {
			stats.Restarts = art.Restarts
		}
		stats.FromCache = stats.FromCache && r.hit
	}
	if hopNets > 0 {
		stats.MeanHops = hopSum / float64(hopNets)
	}
	return stats, nil
}

// getOrComputeCtx is GetOrCompute with correct cancellation ownership
// under the cache's singleflight. Two cases need care: a caller that
// joined an in-flight computation must stop waiting when *its own* ctx
// is done (GetOrComputeCtx bounds the wait), and it can see the joined
// computation fail with the *computing* caller's ctx.Err(). A failed
// compute is never cached, so when the error is a context error that
// did not come from our own ctx, retry — the retry either finds the
// artifacts (someone else recomputed) or becomes the computing caller
// under our live ctx. Terminates because each retry with a live ctx
// either succeeds or computes itself.
func getOrComputeCtx(ctx context.Context, cache *CompileCache, key compilecache.Key, compute func() (*compilecache.Artifacts, error)) (*compilecache.Artifacts, bool, error) {
	for {
		art, hit, err := cache.c.GetOrComputeCtx(ctx, key, compute)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return art, hit, err
	}
}

// placeAndRoute is the uncached compile back end for one netlist (the
// whole deployment, or one shard of it): portfolio placement then
// routing, packaged as cacheable artifacts. tracks is the chip's routing
// channel width (0 = default; see tracksForRange for the per-layer
// resolution). ctx aborts either phase at its next checkpoint.
func (d *Deployment) placeAndRoute(ctx context.Context, nl *netlist.Netlist, tracks int) (*compilecache.Artifacts, error) {
	chip, err := fabric.SizeFor(len(nl.Blocks), tracks, d.params)
	if err != nil {
		return nil, err
	}
	pl, pstats, err := place.Portfolio(ctx, nl, chip, d.cfg.Seed+1, place.PortfolioOptions{
		Runs:    d.cfg.PlacementSeeds,
		Workers: d.cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	res, err := route.Route(ctx, nl, pl, chip, route.Options{Workers: d.cfg.Parallelism})
	if err != nil {
		if ctx.Err() == nil {
			err = fmt.Errorf("%w: %w", ErrUnroutable, err)
		}
		return nil, err
	}
	return &compilecache.Artifacts{
		Chip:           chip,
		Placement:      pl,
		Route:          res,
		PlacementMoves: pstats.TotalMoves,
		WirelengthCost: pstats.Best().FinalCost,
		Restarts:       len(pstats.Runs),
	}, nil
}

// tracksForRange resolves the routing channel width for the chip hosting
// groups [lo, hi): the maximum per-layer requirement among its layers,
// and — when the chip hosts any layer without an assignment, or no
// per-layer tracks were given at all — at least the global Tracks
// (0 = the fabric default). A chip whose layers are all assigned is
// sized purely by them, which is how the autotuner narrows channels
// below the generous default.
func (d *Deployment) tracksForRange(lo, hi int) int {
	if len(d.cfg.LayerTracks) == 0 {
		return d.cfg.Tracks
	}
	t := 0
	uncovered := false
	for _, grp := range d.coreop.Groups[lo:hi] {
		v, ok := d.cfg.LayerTracks[grp.Layer]
		if !ok {
			uncovered = true
			continue
		}
		if v > t {
			t = v
		}
	}
	if uncovered || t == 0 {
		base := d.cfg.Tracks
		if base <= 0 {
			base = fabric.DefaultTracks
		}
		if base > t {
			t = base
		}
	}
	return t
}

// cacheKey is one chip's content address: the model-structure
// fingerprint, the per-group duplication sub-vector and resolved channel
// width of that chip, and the annealing seed knobs. Parallelism is
// deliberately absent — it never changes results — so one cache serves
// machines of any size; so are the knobs that merely *selected* the
// assignment (Duplication, LayerDup, MaxChips, ChipCapacity, ShardPolicy,
// ShardCuts): the netlist is fully determined by the group range and its
// duplication vector, so two compiles that land on the same per-chip
// assignment — a uniform knob, an explicit per-layer map, or two
// autotuner candidates sharing a shard — hit the same entry. shardIdx < 0
// addresses a single-chip deployment.
func (d *Deployment) cacheKey(shardIdx int) compilecache.Key {
	lo, hi := 0, len(d.coreop.Groups)
	if shardIdx >= 0 {
		lo, hi = d.shards[shardIdx].lo, d.shards[shardIdx].hi
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dups=")
	for i, v := range d.alloc.Dup[lo:hi] {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, "|tracks=%d|seed=%d|pseeds=%d", d.tracksForRange(lo, hi), d.cfg.Seed, d.cfg.PlacementSeeds)
	if shardIdx >= 0 {
		fmt.Fprintf(&b, "|shardgroups=%d:%d", lo, hi)
	}
	if seg := d.cfg.Faults.cacheSegment(); seg != "" {
		// Fault penalties shift placement costs, so a faulted deployment's
		// artifacts must never collide with the ideal-device entry.
		fmt.Fprintf(&b, "|faults=%s", seg)
	}
	return compilecache.KeyFrom(d.model.graph.Fingerprint(), b.String())
}
