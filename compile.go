package fpsa

import (
	"fmt"

	"fpsa/internal/bitstream"
	"fpsa/internal/compilecache"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/mapper"
	"fpsa/internal/netlist"
	"fpsa/internal/perf"
	"fpsa/internal/place"
	"fpsa/internal/route"
	"fpsa/internal/synth"
)

// Config controls compilation.
type Config struct {
	// Duplication is the model duplication degree (§5.2 of the paper);
	// 0 means 1×.
	Duplication int
	// Tracks overrides the routing channel width (0 = default 2048).
	Tracks int
	// Seed drives placement annealing.
	Seed int64
	// PlacementSeeds is the size of the multi-seed annealing portfolio
	// PlaceAndRoute runs (0 or 1 = a single run, the classic behavior).
	// Portfolio run i anneals independently with seed Seed+1+i; runs
	// whose checkpoint cost falls a margin behind the portfolio's
	// best-so-far are cancelled early (see place.PortfolioOptions), and
	// the cheapest placement wins deterministically.
	PlacementSeeds int
	// Parallelism bounds the worker goroutines PlaceAndRoute uses for
	// both the annealing portfolio and per-iteration net routing
	// (0 = GOMAXPROCS). It changes wall-clock only, never results, and is
	// therefore excluded from the deployment-cache key.
	Parallelism int
	// Cache, when non-nil, memoizes placement/routing/bitstream artifacts
	// content-addressed by the model structure and this Config: a
	// cache-hit PlaceAndRoute skips both phases entirely and Bitstream is
	// generated at most once per deployment key. Share one cache across
	// every Compile in the process (see NewCompileCache and
	// DeployCache.Artifacts).
	Cache *CompileCache
}

// DefaultConfig returns a 1× deployment on the default fabric.
func DefaultConfig() Config { return Config{Duplication: 1} }

// Deployment is a model mapped onto the FPSA fabric.
type Deployment struct {
	model  Model
	cfg    Config
	coreop *coreop.Graph
	alloc  mapper.Allocation
	nl     *netlist.Netlist
	params device.Params

	// Last place & route artifacts (set by PlaceAndRoute), consumed by
	// Bitstream. lastArtifacts additionally memoizes the generated
	// bitstream — per deployment when uncached, shared across every
	// deployment of the key when a cache supplied the artifacts.
	// Generation is deterministic, so repeat Bitstream calls returning
	// the memo are indistinguishable from regeneration.
	lastChip      fabric.Chip
	lastPlacement *place.Placement
	lastRoute     *route.Result
	lastArtifacts *compilecache.Artifacts
}

// Compile synthesizes, allocates and maps a model.
func Compile(m Model, cfg Config) (*Deployment, error) {
	if err := m.valid(); err != nil {
		return nil, err
	}
	if cfg.Duplication <= 0 {
		cfg.Duplication = 1
	}
	if cfg.PlacementSeeds <= 0 {
		cfg.PlacementSeeds = 1
	}
	params := device.Params45nm
	co, err := synth.Synthesize(m.graph, synth.Options{Params: params})
	if err != nil {
		return nil, err
	}
	alloc, err := mapper.Allocate(co, cfg.Duplication)
	if err != nil {
		return nil, err
	}
	nl, err := mapper.BuildNetlist(co, alloc, params, nil)
	if err != nil {
		return nil, err
	}
	return &Deployment{model: m, cfg: cfg, coreop: co, alloc: alloc, nl: nl, params: params}, nil
}

// Blocks returns the function-block inventory.
func (d *Deployment) Blocks() (pes, smbs, clbs int) { return d.nl.Counts() }

// AreaMM2 returns the chip area (blocks; the mrFPGA routing fabric stacks
// above them).
func (d *Deployment) AreaMM2() float64 { return d.nl.AreaUM2(d.params) * 1e-6 }

// CoreOps returns the synthesized weight-group count and total core-op
// executions per sample.
func (d *Deployment) CoreOps() (groups int, opsPerSample int64) {
	return len(d.coreop.Groups), d.coreop.TotalCoreOps()
}

// PerfSummary is a deployment's modeled performance.
type PerfSummary struct {
	ThroughputSPS    float64
	LatencyUS        float64
	PerfOPS          float64
	DensityOPSmm2    float64
	PeakOPS          float64
	SpatialBoundOPS  float64
	TemporalBoundOPS float64
	CompNSPerVMM     float64
	CommNSPerVMM     float64
	// EnergyUJ is the per-sample energy (Table 1 per-block energies; PE
	// + SMB + CLB, routing excluded); PowerMW multiplies by throughput.
	EnergyUJ float64
	PowerMW  float64
}

// String renders the summary.
func (p PerfSummary) String() string {
	return fmt.Sprintf("throughput %.4g samples/s, latency %.4g us, perf %.4g OPS (%.4g OPS/mm2), energy %.4g uJ/sample (%.4g mW), bounds peak %.3g / spatial %.3g / temporal %.3g",
		p.ThroughputSPS, p.LatencyUS, p.PerfOPS, p.DensityOPSmm2,
		p.EnergyUJ, p.PowerMW,
		p.PeakOPS, p.SpatialBoundOPS, p.TemporalBoundOPS)
}

// Performance evaluates the deployment with the calibrated mean routed hop
// count; PerformanceWithHops substitutes a measured value (see
// PlaceAndRoute).
func (d *Deployment) Performance() (PerfSummary, error) { return d.PerformanceWithHops(0) }

// PerformanceWithHops evaluates the deployment using the given mean routed
// hop count (0 = the calibrated default).
func (d *Deployment) PerformanceWithHops(hops int) (PerfSummary, error) {
	r, err := perf.Evaluate(perf.Input{
		Model:   d.model.graph,
		CoreOps: d.coreop,
		Params:  d.params,
		Dup:     d.cfg.Duplication,
		Hops:    hops,
	}, perf.TargetFPSA)
	if err != nil {
		return PerfSummary{}, err
	}
	return PerfSummary{
		ThroughputSPS:    r.ThroughputSPS,
		LatencyUS:        r.LatencyUS,
		PerfOPS:          r.PerfOPS,
		DensityOPSmm2:    r.DensityOPSmm2,
		PeakOPS:          r.PeakOPS,
		SpatialBoundOPS:  r.SpatialBoundOPS,
		TemporalBoundOPS: r.TemporalBoundOPS,
		CompNSPerVMM:     r.CompNSPerVMM,
		CommNSPerVMM:     r.CommNSPerVMM,
		EnergyUJ:         r.Energy.TotalUJ(),
		PowerMW:          r.PowerMW,
	}, nil
}

// PRStats reports a placement & routing run.
type PRStats struct {
	ChipSide       int
	Converged      bool
	Iterations     int
	MeanHops       float64
	MaxHops        int
	ChannelsNeeded int
	// PlacementMoves sums annealing moves across the whole portfolio (the
	// work spent); WirelengthCost is the winning placement's exact cost.
	PlacementMoves int
	WirelengthCost float64
	// Restarts is the portfolio size the placement was chosen from.
	Restarts int
	// FromCache reports that the deployment cache supplied the artifacts
	// and no annealing or routing ran.
	FromCache bool
}

// String renders the stats.
func (s PRStats) String() string {
	out := fmt.Sprintf("chip %dx%d, routed converged=%v in %d iters, hops mean %.1f max %d, channels needed %d",
		s.ChipSide, s.ChipSide, s.Converged, s.Iterations, s.MeanHops, s.MaxHops, s.ChannelsNeeded)
	if s.Restarts > 1 {
		out += fmt.Sprintf(", portfolio %d seeds", s.Restarts)
	}
	if s.FromCache {
		out += " (cached)"
	}
	return out
}

// BitstreamInfo summarizes a generated, verified FPSA configuration.
type BitstreamInfo struct {
	// ProgrammedCells is the number of low-resistance mrFPGA ReRAM
	// cells (switch-box plus connection-box).
	ProgrammedCells int
	SBCells         int
	CBCells         int
	// TrackOccupancy is the busiest channel's used tracks.
	TrackOccupancy int
}

// String renders the info.
func (b BitstreamInfo) String() string {
	return fmt.Sprintf("configuration: %d programmed cells (%d SB + %d CB), busiest channel %d tracks",
		b.ProgrammedCells, b.SBCells, b.CBCells, b.TrackOccupancy)
}

// Bitstream generates and verifies the FPSA configuration — the final
// artifact of the stack (Figure 5) — for the last PlaceAndRoute run. The
// verification interprets only the programmed ReRAM cells and proves every
// net's source reaches every sink with no shorts.
func (d *Deployment) Bitstream() (BitstreamInfo, error) {
	if d.lastRoute == nil {
		return BitstreamInfo{}, fmt.Errorf("fpsa: run PlaceAndRoute before Bitstream")
	}
	gen := func() (*bitstream.Config, error) {
		cfg, err := bitstream.Generate(d.nl, d.lastPlacement, d.lastRoute, d.lastChip)
		if err != nil {
			return nil, err
		}
		if err := cfg.Verify(d.nl); err != nil {
			return nil, fmt.Errorf("fpsa: generated configuration failed verification: %w", err)
		}
		return cfg, nil
	}
	var cfg *bitstream.Config
	var err error
	if d.lastArtifacts != nil {
		// Cached deployments generate (and verify) the configuration at
		// most once per key; every later Bitstream call shares it.
		cfg, err = d.lastArtifacts.Bitstream(gen)
	} else {
		cfg, err = gen()
	}
	if err != nil {
		return BitstreamInfo{}, err
	}
	return BitstreamInfo{
		ProgrammedCells: cfg.CellCount(),
		SBCells:         len(cfg.SBCells),
		CBCells:         len(cfg.CBCells),
		TrackOccupancy:  cfg.TrackOccupancy(),
	}, nil
}

// PlaceAndRoute runs multi-seed simulated-annealing placement and
// parallel PathFinder routing on the deployment's netlist and reports the
// measured communication geometry. Config.PlacementSeeds sets the
// annealing portfolio size and Config.Parallelism the worker count; the
// result is deterministic for a fixed (Seed, PlacementSeeds) regardless
// of Parallelism. With Config.Cache set, the artifacts are served
// content-addressed — a repeat deployment of the same model and Config
// skips placement and routing entirely (PRStats.FromCache). Intended for
// small and medium deployments (hundreds of blocks); the large zoo models
// use the calibrated hop estimate instead.
func (d *Deployment) PlaceAndRoute() (PRStats, error) {
	var art *compilecache.Artifacts
	var hit bool
	var err error
	if d.cfg.Cache != nil {
		art, hit, err = d.cfg.Cache.c.GetOrCompute(d.cacheKey(), d.placeAndRoute)
	} else {
		art, err = d.placeAndRoute()
	}
	if err != nil {
		return PRStats{}, err
	}
	d.lastChip, d.lastPlacement, d.lastRoute, d.lastArtifacts = art.Chip, art.Placement, art.Route, art
	return PRStats{
		ChipSide:       art.Chip.W,
		Converged:      art.Route.Converged,
		Iterations:     art.Route.Iterations,
		MeanHops:       art.Route.MeanHops(),
		MaxHops:        art.Route.MaxHops(),
		ChannelsNeeded: art.Route.MaxOccupancy,
		PlacementMoves: art.PlacementMoves,
		WirelengthCost: art.WirelengthCost,
		Restarts:       art.Restarts,
		FromCache:      hit,
	}, nil
}

// placeAndRoute is the uncached compile back end: portfolio placement
// then routing, packaged as cacheable artifacts.
func (d *Deployment) placeAndRoute() (*compilecache.Artifacts, error) {
	chip, err := fabric.SizeFor(len(d.nl.Blocks), d.cfg.Tracks, d.params)
	if err != nil {
		return nil, err
	}
	pl, pstats, err := place.Portfolio(d.nl, chip, d.cfg.Seed+1, place.PortfolioOptions{
		Runs:    d.cfg.PlacementSeeds,
		Workers: d.cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	res, err := route.Route(d.nl, pl, chip, route.Options{Workers: d.cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	return &compilecache.Artifacts{
		Chip:           chip,
		Placement:      pl,
		Route:          res,
		PlacementMoves: pstats.TotalMoves,
		WirelengthCost: pstats.Best().FinalCost,
		Restarts:       len(pstats.Runs),
	}, nil
}

// cacheKey is the deployment's content address: the model-structure
// fingerprint plus every Config field that changes compile output.
// Parallelism is deliberately absent — it never changes results — so one
// cache serves machines of any size.
func (d *Deployment) cacheKey() compilecache.Key {
	return compilecache.KeyFrom(d.model.graph.Fingerprint(),
		fmt.Sprintf("dup=%d|tracks=%d|seed=%d|pseeds=%d",
			d.cfg.Duplication, d.cfg.Tracks, d.cfg.Seed, d.cfg.PlacementSeeds))
}
