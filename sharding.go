package fpsa

import (
	"fmt"

	"fpsa/internal/serve"
	"fpsa/internal/shard"
)

// ShardPolicy selects the objective the multi-chip partitioner optimizes
// when Config.MaxChips (or EngineConfig.Chips) splits a model across
// chips. See internal/shard for the partitioning algorithm.
type ShardPolicy int

// Sharding policies.
const (
	// ShardAuto picks the context's natural objective: minimal
	// inter-chip traffic for compilation (link wires and transfer energy
	// are the scarce resource), balanced per-chip load for the serving
	// pipeline (throughput is set by the slowest chip).
	ShardAuto ShardPolicy = iota
	// ShardMinCut minimizes the total signal traffic crossing inter-chip
	// links, breaking ties toward balanced loads.
	ShardMinCut
	// ShardBalanced minimizes the heaviest chip's load, breaking ties
	// toward less link traffic.
	ShardBalanced
)

// String names the policy the way the CLIs spell it.
func (p ShardPolicy) String() string {
	switch p {
	case ShardAuto:
		return "auto"
	case ShardMinCut:
		return "mincut"
	case ShardBalanced:
		return "balanced"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseShardPolicy parses the CLI spelling of a policy.
func ParseShardPolicy(name string) (ShardPolicy, error) {
	switch name {
	case "auto", "":
		return ShardAuto, nil
	case "mincut":
		return ShardMinCut, nil
	case "balanced":
		return ShardBalanced, nil
	}
	return 0, fmt.Errorf("%w: unknown shard policy %q (want auto, mincut, or balanced)", ErrInvalidArgument, name)
}

// compilePolicy maps the public policy onto the partitioner's for the
// compile path (Auto = min-cut).
func (p ShardPolicy) compilePolicy() (shard.Policy, error) {
	switch p {
	case ShardAuto, ShardMinCut:
		return shard.PolicyMinCut, nil
	case ShardBalanced:
		return shard.PolicyBalanced, nil
	}
	return 0, fmt.Errorf("%w: unknown shard policy %d", ErrInvalidArgument, int(p))
}

// servePolicy maps the public policy onto the serving engine's
// stage-partitioning objective (Auto = balanced: pipeline throughput is
// set by the slowest chip). An engine derived from a deployment carries
// the deployment's policy here, so an explicit ShardMinCut or
// ShardBalanced governs both the compiled partition and the served one.
func (p ShardPolicy) servePolicy() serve.StagePolicy {
	if p == ShardMinCut {
		return serve.StageMinCut
	}
	return serve.StageBalanced
}

// ShardInfo describes one chip of a sharded deployment.
type ShardInfo struct {
	// Chip is the shard's pipeline position (0-based; signals only ever
	// flow from lower to higher chips).
	Chip int
	// Groups is the number of weight groups mapped onto this chip.
	Groups int
	// PEs, SMBs and CLBs are the chip's function-block inventory.
	PEs, SMBs, CLBs int
	// InSignals is the per-sample signal traffic entering this chip over
	// the inter-chip link from its predecessor (0 for chip 0, whose
	// inputs arrive from the host).
	InSignals int
}

// String renders the shard.
func (s ShardInfo) String() string {
	return fmt.Sprintf("chip %d: %d groups, %d PEs, %d SMBs, %d CLBs, %d signals in",
		s.Chip, s.Groups, s.PEs, s.SMBs, s.CLBs, s.InSignals)
}

// Chips returns the number of chips the deployment occupies (1 when the
// model fits a single fabric or MaxChips was not set).
func (d *Deployment) Chips() int {
	if len(d.shards) == 0 {
		return 1
	}
	return len(d.shards)
}

// Shards describes the per-chip partition of a sharded deployment; it
// returns nil for a single-chip deployment.
func (d *Deployment) Shards() []ShardInfo {
	if len(d.shards) == 0 {
		return nil
	}
	infos := make([]ShardInfo, len(d.shards))
	for i, sh := range d.shards {
		pes, smbs, clbs := sh.nl.Counts()
		in := 0
		if i > 0 {
			in = d.plan.CutTraffic[i-1]
		}
		infos[i] = ShardInfo{
			Chip:      i,
			Groups:    len(sh.co.Groups),
			PEs:       pes,
			SMBs:      smbs,
			CLBs:      clbs,
			InSignals: in,
		}
	}
	return infos
}
