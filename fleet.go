package fpsa

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fpsa/internal/fleet"
	"fpsa/internal/serve"
	"fpsa/internal/synth"
)

// QoSClass is a tenant's admission class in a Fleet. Higher classes may
// occupy a larger share of a model's in-flight capacity before their
// requests shed with ErrOverloaded: gold rides to the full limit, silver
// to three quarters, batch to half. The zero value is QoSBatch, so an
// unconfigured tenant gets the most conservative share.
type QoSClass int

// QoS classes, in ascending admission share.
const (
	QoSBatch QoSClass = iota
	QoSSilver
	QoSGold
)

// String names the class ("batch", "silver", "gold").
func (c QoSClass) String() string { return fleet.Class(c).String() }

// ParseQoSClass parses a class name as it appears in fleet config files:
// "gold", "silver" or "batch" (empty means batch). Anything else is
// ErrInvalidArgument.
func ParseQoSClass(s string) (QoSClass, error) {
	c, err := fleet.ParseClass(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrInvalidArgument, err)
	}
	return QoSClass(c), nil
}

// fleetSettings is what the FleetOptions assemble.
type fleetSettings struct {
	opts  fleet.Options
	cache *CompileCache
}

// FleetOption configures NewFleet. Options are applied in order; a nil
// FleetOption is ignored.
type FleetOption func(*fleetSettings)

// WithFleetChips sets the fleet's simulated chip pool (default 64).
// Replicas allocate from it: model registration, autoscaling and swaps
// all stop at the pool boundary, and a swap transiently needs chips for
// both the old and the new pool.
func WithFleetChips(n int) FleetOption {
	return func(s *fleetSettings) { s.opts.Chips = n }
}

// WithTenant registers one tenant's admission config: its QoS class and
// an optional in-flight quota (0 = unlimited). Unknown tenants are
// admitted at QoSBatch with no quota.
func WithTenant(name string, class QoSClass, quota int) FleetOption {
	return func(s *fleetSettings) {
		if s.opts.Tenants == nil {
			s.opts.Tenants = make(map[string]fleet.Tenant)
		}
		s.opts.Tenants[name] = fleet.Tenant{Class: fleet.Class(class), Quota: quota}
	}
}

// WithFleetCache shares a compile-artifact cache with the fleet:
// Fleet.CompileAndSwap compiles replacements through it, so a swap whose
// structure matches a previous compile skips place & route entirely.
// The default is a fresh private cache.
func WithFleetCache(c *CompileCache) FleetOption {
	return func(s *fleetSettings) { s.cache = c }
}

// WithScaleInterval sets the autoscaler tick (default 50ms).
func WithScaleInterval(d time.Duration) FleetOption {
	return func(s *fleetSettings) { s.opts.ScaleInterval = d }
}

// WithScalePolicy shapes the autoscaler: backlog is the per-replica
// queue depth that counts as pressure (default 4), sustain how many
// consecutive ticks of pressure add a replica (default 2), and idle how
// many consecutive empty ticks drop one (default 40). Zero keeps a
// field's default.
func WithScalePolicy(backlog, sustain, idle int) FleetOption {
	return func(s *fleetSettings) {
		s.opts.ScaleUpBacklog = backlog
		s.opts.ScaleUpTicks = sustain
		s.opts.IdleTicks = idle
	}
}

// fleetModelSettings is what the FleetModelOptions assemble.
type fleetModelSettings struct {
	replicas    int
	minReplicas int
	maxReplicas int
	queueDepth  int
	eng         engineSettings
}

// FleetModelOption configures Fleet.AddModel. Options are applied in
// order; a nil FleetModelOption is ignored.
type FleetModelOption func(*fleetModelSettings)

// WithModelReplicas sets the model's initial replica pool size
// (default 1).
func WithModelReplicas(n int) FleetModelOption {
	return func(s *fleetModelSettings) { s.replicas = n }
}

// WithModelReplicaRange bounds the autoscaler's pool moves (defaults:
// min 1, max the larger of 4 and the initial size).
func WithModelReplicaRange(min, max int) FleetModelOption {
	return func(s *fleetModelSettings) { s.minReplicas, s.maxReplicas = min, max }
}

// WithModelQueueDepth sets the per-replica queue depth (default 64), on
// both sides at once: each replica engine's request queue and the
// admission ceiling (replicas × depth, scaled by the caller's QoS
// share).
func WithModelQueueDepth(n int) FleetModelOption {
	return func(s *fleetModelSettings) { s.queueDepth = n }
}

// WithModelEngine shapes each replica's serving engine with the usual
// engine options (WithMode, WithMaxBatch, WithFlushInterval,
// WithSpikePath, …). A fleet replica is always a one-worker engine —
// the pool, not the engine, is the parallelism — so WithWorkers is
// overridden; use WithModelReplicas. Prefer WithModelQueueDepth over
// WithQueueDepth here so admission stays in step with the queue.
func WithModelEngine(opts ...EngineOption) FleetModelOption {
	return func(s *fleetModelSettings) {
		for _, o := range opts {
			if o != nil {
				o(&s.eng)
			}
		}
	}
}

// fleetModel is the public layer's per-model record: everything needed
// to mint replicas for a replacement deployment at Swap time.
type fleetModel struct {
	chipsPerReplica int
	chipsOverride   bool // WithEngineChips pinned the count explicitly
	cfg             EngineConfig
}

// Fleet serves many compiled Deployments onto a bounded pool of
// simulated chips, concurrently and multi-tenant: per-model replica
// pools with queue-driven autoscaling, class-weighted admission with
// typed shed errors (ErrOverloaded, ErrTenantQuota), and zero-downtime
// bitstream hot-swap (Swap, CompileAndSwap). Construct with NewFleet,
// register models with AddModel, and Close when done. All methods are
// safe for concurrent use.
type Fleet struct {
	fl    *fleet.Fleet
	cache *CompileCache

	mu     sync.Mutex
	models map[string]*fleetModel
}

// NewFleet builds an empty fleet and starts its autoscaler.
func NewFleet(opts ...FleetOption) (*Fleet, error) {
	var set fleetSettings
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	if set.opts.Chips < 0 {
		return nil, fmt.Errorf("%w: WithFleetChips(%d): chip pool must be ≥ 0 (0 = default)", ErrInvalidArgument, set.opts.Chips)
	}
	for name, t := range set.opts.Tenants {
		if t.Quota < 0 {
			return nil, fmt.Errorf("%w: WithTenant(%q): quota %d must be ≥ 0 (0 = unlimited)", ErrInvalidArgument, name, t.Quota)
		}
		if t.Class < fleet.ClassBatch || t.Class > fleet.ClassGold {
			return nil, fmt.Errorf("%w: WithTenant(%q): unknown QoS class %d", ErrInvalidArgument, name, t.Class)
		}
	}
	if set.cache == nil {
		set.cache = NewCompileCache(0)
	}
	return &Fleet{
		fl:     fleet.New(set.opts),
		cache:  set.cache,
		models: make(map[string]*fleetModel),
	}, nil
}

// Cache returns the fleet's compile-artifact cache (see WithFleetCache
// and CompileAndSwap).
func (f *Fleet) Cache() *CompileCache { return f.cache }

// replicaSource lowers a deployment to the internal fleet's replica
// source: a factory minting one-worker engines over the deployment's
// memoized net, plus the input quantization window those engines expect.
// Every replica of one version programs identical state (in
// ModeSpikingNoisy each factory call re-derives the same variation
// stream from the deployment seed), which is what makes fleet outputs
// bit-identical to a fresh single-engine serve of the same deployment.
func replicaSource(d *Deployment, cfg EngineConfig) (fleet.Source, error) {
	sn, err := d.NewNet(nil)
	if err != nil {
		return fleet.Source{}, err
	}
	policy := d.cfg.ShardPolicy.servePolicy()
	return fleet.Source{
		Window: sn.Window(),
		New: func() (fleet.Replica, error) {
			e, err := newEngine(sn, cfg, policy)
			if err != nil {
				return nil, err
			}
			return e.eng, nil
		},
	}, nil
}

// realizeBitstream makes sure the deployment's verified configuration
// exists before replicas spin up against it: place & route (through the
// deployment's compile cache when it carries one — CompileAndSwap wires
// the fleet's) and bitstream generation. A deployment that was already
// placed serves its bitstream without re-running either phase.
func realizeBitstream(ctx context.Context, d *Deployment) error {
	if _, err := d.Bitstream(ctx); err == nil || !errors.Is(err, ErrNotPlaced) {
		return err
	}
	if _, err := d.PlaceAndRoute(ctx); err != nil {
		return err
	}
	_, err := d.Bitstream(ctx)
	return err
}

// resolveReplicaConfig turns a model's engine template into the concrete
// per-replica EngineConfig for deployment d, applying the same
// chip-partition rules as Deployment.NewEngine.
func resolveReplicaConfig(d *Deployment, set fleetModelSettings) (EngineConfig, error) {
	cfg := set.eng.cfg
	if set.eng.chipsSet {
		if d.Chips() > 1 && cfg.Chips != d.Chips() {
			return EngineConfig{}, fmt.Errorf("%w: deployment of %s compiled across %d chips but the fleet model requested %d; drop WithEngineChips to inherit the compiled partition",
				ErrChipConflict, d.model.Name(), d.Chips(), cfg.Chips)
		}
	} else {
		cfg.Chips = d.Chips()
	}
	// The pool, not the engine, is the parallelism.
	cfg.Workers = 1
	if set.queueDepth < 0 {
		return EngineConfig{}, fmt.Errorf("%w: WithModelQueueDepth(%d): depth must be ≥ 0 (0 = default)", ErrInvalidArgument, set.queueDepth)
	}
	if set.queueDepth > 0 {
		cfg.QueueDepth = set.queueDepth
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	return cfg, nil
}

// AddModel registers a compiled deployment under name and builds its
// initial replica pool; requests route to it by name via Classify and
// Outputs. The pool's chips are reserved from the fleet (each replica
// occupies the deployment's compiled chip count), so registration fails
// with ErrCapacity when the pool cannot fit.
func (f *Fleet) AddModel(ctx context.Context, name string, d *Deployment, opts ...FleetModelOption) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d == nil {
		return fmt.Errorf("%w: AddModel(%q): nil deployment", ErrInvalidArgument, name)
	}
	set := fleetModelSettings{eng: engineSettings{cfg: defaultEngineConfig()}}
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	if set.replicas < 0 || set.minReplicas < 0 || set.maxReplicas < 0 {
		return fmt.Errorf("%w: AddModel(%q): replica counts must be ≥ 0 (0 = default)", ErrInvalidArgument, name)
	}
	if set.maxReplicas > 0 && set.minReplicas > set.maxReplicas {
		return fmt.Errorf("%w: AddModel(%q): WithModelReplicaRange(%d, %d): min exceeds max",
			ErrInvalidArgument, name, set.minReplicas, set.maxReplicas)
	}
	cfg, err := resolveReplicaConfig(d, set)
	if err != nil {
		return err
	}
	if err := realizeBitstream(ctx, d); err != nil {
		return err
	}
	src, err := replicaSource(d, cfg)
	if err != nil {
		return err
	}
	chipsPer := cfg.Chips
	if chipsPer < 1 {
		chipsPer = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.fl.AddModel(name, src, fleet.ModelConfig{
		Replicas:        set.replicas,
		MinReplicas:     set.minReplicas,
		MaxReplicas:     set.maxReplicas,
		ChipsPerReplica: chipsPer,
		QueueDepth:      cfg.QueueDepth,
	}); err != nil {
		return wrapFleetErr(err)
	}
	f.models[name] = &fleetModel{chipsPerReplica: chipsPer, chipsOverride: set.eng.chipsSet, cfg: cfg}
	return nil
}

// Classify serves one request: the named model classifies features
// (values in [0, 1]) on behalf of tenant, returning the argmax class and
// the id of the deployment version that served it. Admission may shed
// with ErrOverloaded (class share exhausted) or ErrTenantQuota; both are
// matched with errors.Is.
func (f *Fleet) Classify(ctx context.Context, model, tenant string, features []float64) (class, version int, err error) {
	out, version, err := f.Outputs(ctx, model, tenant, features)
	if err != nil {
		return 0, 0, err
	}
	return synth.Argmax(out), version, nil
}

// Outputs is Classify returning the raw output spike counts instead of
// the argmax class.
func (f *Fleet) Outputs(ctx context.Context, model, tenant string, features []float64) (out []int, version int, err error) {
	res, err := f.fl.Infer(ctx, model, tenant, features)
	if err != nil {
		return nil, 0, wrapFleetErr(err)
	}
	return res.Output, res.Version, nil
}

// Swap hot-swaps the named model's bitstream to deployment d with zero
// downtime: it builds a replacement replica pool against d (same pool
// size, engine shape inherited from AddModel), atomically re-points the
// route, waits for every request pinned to the old version and tears it
// down. In-flight requests are never dropped or mixed across versions —
// each completes on the version it pinned, stamped with that version's
// id. The replacement must keep the model's chip footprint: a
// deployment compiled across a different chip count is ErrChipConflict,
// and a fleet without transient headroom for both pools is ErrCapacity.
func (f *Fleet) Swap(ctx context.Context, model string, d *Deployment) (FleetSwapEvent, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d == nil {
		return FleetSwapEvent{}, fmt.Errorf("%w: Swap(%q): nil deployment", ErrInvalidArgument, model)
	}
	f.mu.Lock()
	fm, ok := f.models[model]
	f.mu.Unlock()
	if !ok {
		return FleetSwapEvent{}, fmt.Errorf("%w: unknown fleet model %q", ErrInvalidArgument, model)
	}
	cfg := fm.cfg
	if !fm.chipsOverride {
		cfg.Chips = d.Chips()
	}
	chips := cfg.Chips
	if chips < 1 {
		chips = 1
	}
	if chips != fm.chipsPerReplica {
		return FleetSwapEvent{}, fmt.Errorf("%w: model %q serves %d chip(s) per replica but the replacement deployment needs %d; recompile the replacement with the same chip partition",
			ErrChipConflict, model, fm.chipsPerReplica, chips)
	}
	if err := realizeBitstream(ctx, d); err != nil {
		return FleetSwapEvent{}, err
	}
	src, err := replicaSource(d, cfg)
	if err != nil {
		return FleetSwapEvent{}, err
	}
	ev, err := f.fl.Swap(ctx, model, src)
	if err != nil {
		return FleetSwapEvent{}, wrapFleetErr(err)
	}
	return publicSwapEvent(ev), nil
}

// CompileAndSwap compiles a replacement for the named model through the
// fleet's compile cache — a structurally matching earlier compile skips
// place & route — and hot-swaps it in (see Swap). It returns the
// compiled deployment alongside the swap record.
func (f *Fleet) CompileAndSwap(ctx context.Context, model string, m Model, opts ...Option) (*Deployment, FleetSwapEvent, error) {
	d, err := Compile(ctx, m, append(append([]Option(nil), opts...), WithCache(f.cache))...)
	if err != nil {
		return nil, FleetSwapEvent{}, err
	}
	ev, err := f.Swap(ctx, model, d)
	if err != nil {
		return nil, FleetSwapEvent{}, err
	}
	return d, ev, nil
}

// Close retires every model, drains pinned requests and releases all
// replicas. Idempotent; requests afterwards return ErrClosed.
func (f *Fleet) Close() error { return wrapFleetErr(f.fl.Close()) }

// FleetModelStats is one fleet model's serving snapshot, shaped for the
// /fleetz endpoint.
type FleetModelStats struct {
	// Requests counts completed inferences (successes and errors, not
	// sheds); Errors the subset that failed. ShedOverload and ShedQuota
	// count sheds by cause.
	Requests     uint64 `json:"requests"`
	Errors       uint64 `json:"errors"`
	ShedOverload uint64 `json:"shed_overload"`
	ShedQuota    uint64 `json:"shed_quota"`
	// Replicas is the current pool size; QueueDepth the summed depth of
	// the replicas' request queues; InFlight the admitted-but-uncompleted
	// count.
	Replicas   int `json:"replicas"`
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// Version is the current bitstream generation (1 at registration,
	// +1 per swap); Window its input quantization window.
	Version int `json:"version"`
	Window  int `json:"window"`
	// ScaleUps and ScaleDowns count autoscaler pool moves.
	ScaleUps   uint64 `json:"scale_ups"`
	ScaleDowns uint64 `json:"scale_downs"`
	// QPS is completed requests per second since registration; the
	// latency percentiles are over a sliding window of recent requests
	// (the same implementation behind EngineStats).
	QPS           float64 `json:"qps"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
}

// FleetSwapEvent records one completed hot-swap.
type FleetSwapEvent struct {
	Model       string    `json:"model"`
	FromVersion int       `json:"from_version"`
	ToVersion   int       `json:"to_version"`
	Replicas    int       `json:"replicas"`
	At          time.Time `json:"at"`
	DurationMS  float64   `json:"duration_ms"`
}

// FleetStats is a point-in-time snapshot of the whole fleet: the chip
// pool, every model's counters, and the swap history. It is the payload
// of fpsa-serve's /fleetz endpoint.
type FleetStats struct {
	Chips     int                        `json:"chips"`
	ChipsUsed int                        `json:"chips_used"`
	Models    map[string]FleetModelStats `json:"models"`
	Swaps     []FleetSwapEvent           `json:"swaps"`
}

// Stats snapshots the fleet.
func (f *Fleet) Stats() FleetStats {
	s := f.fl.Stats()
	out := FleetStats{
		Chips:     s.Chips,
		ChipsUsed: s.ChipsUsed,
		Models:    make(map[string]FleetModelStats, len(s.Models)),
		Swaps:     make([]FleetSwapEvent, 0, len(s.Swaps)),
	}
	for name, m := range s.Models {
		out.Models[name] = FleetModelStats{
			Requests:      m.Requests,
			Errors:        m.Errors,
			ShedOverload:  m.Overload,
			ShedQuota:     m.Quota,
			Replicas:      m.Replicas,
			QueueDepth:    m.QueueDepth,
			InFlight:      m.InFlight,
			Version:       m.Version,
			Window:        m.Window,
			ScaleUps:      m.ScaleUps,
			ScaleDowns:    m.ScaleDowns,
			QPS:           m.QPS,
			P50LatencyUS:  m.P50LatencyUS,
			P99LatencyUS:  m.P99LatencyUS,
			P999LatencyUS: m.P999LatencyUS,
		}
	}
	for _, ev := range s.Swaps {
		out.Swaps = append(out.Swaps, publicSwapEvent(ev))
	}
	return out
}

func publicSwapEvent(ev fleet.SwapEvent) FleetSwapEvent {
	return FleetSwapEvent{
		Model:       ev.Model,
		FromVersion: ev.From,
		ToVersion:   ev.To,
		Replicas:    ev.Replicas,
		At:          ev.At,
		DurationMS:  float64(ev.Duration) / float64(time.Millisecond),
	}
}

// wrapFleetErr lifts internal fleet sentinels into the package taxonomy:
// overload and quota sheds surface as their public sentinels, a closed
// fleet as ErrClosed, an unknown model as ErrInvalidArgument, and chip
// exhaustion as ErrCapacity.
func wrapFleetErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fleet.ErrOverloaded):
		return ErrOverloaded
	case errors.Is(err, fleet.ErrTenantQuota):
		return ErrTenantQuota
	case errors.Is(err, serve.ErrClosed):
		return ErrClosed
	case errors.Is(err, fleet.ErrUnknownModel):
		return fmt.Errorf("%w: %w", ErrInvalidArgument, err)
	case errors.Is(err, fleet.ErrNoChips):
		return fmt.Errorf("%w: %w", ErrCapacity, err)
	}
	return err
}
