// mlp_inference: train an MLP, deploy it onto simulated FPSA spiking
// processing elements, and classify held-out samples with the cycle-level
// spike simulation — the end-to-end functional path of the system stack
// (synthesizer → core-ops → PEs).
package main

import (
	"context"
	"fmt"
	"log"

	"fpsa"
)

func main() {
	ds := fpsa.SyntheticDataset(42, 900, 16, 4, 0.08)
	train, test := ds.Split(2.0 / 3)

	net, err := fpsa.TrainMLP(42, []int{16, 24, 4}, train, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float model accuracy: %.3f\n", net.Accuracy(test))

	d, err := fpsa.Compile(context.Background(), net.Model(),
		fpsa.WithWeightSource(net.WeightSource()))
	if err != nil {
		log.Fatal(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed onto %d core-op stages (window Γ=%d)\n", sn.Stages(), sn.Window())

	correct, agree := 0, 0
	const n = 60
	for i := 0; i < n; i++ {
		label, err := sn.Classify(test.X[i], fpsa.ModeSpiking)
		if err != nil {
			log.Fatal(err)
		}
		if label == test.Y[i] {
			correct++
		}
		if label == net.Predict(test.X[i]) {
			agree++
		}
	}
	fmt.Printf("spiking inference over %d samples: accuracy %.3f, agreement with float %.3f\n",
		n, float64(correct)/float64(n), float64(agree)/float64(n))

	// One sample in detail: raw output spike counts per class.
	out, err := sn.Outputs(test.X[0], fpsa.ModeSpiking)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample 0: true class %d, output spike counts %v\n", test.Y[0], out)
}
