// variation_study: the Figure 9 experiment on the public API — compare the
// splicing and add weight-representation methods under ReRAM programming
// variation on a trained network.
package main

import (
	"fmt"
	"log"

	"fpsa"
)

func main() {
	ds := fpsa.SyntheticDataset(301, 1800, 24, 8, 0.13)
	train, test := ds.Split(2.0 / 3)
	net, err := fpsa.TrainMLP(301, []int{24, 48, 40, 32, 8}, train, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-precision accuracy: %.3f\n", net.Accuracy(test))
	fmt.Printf("%6s %22s %22s\n", "cells", "splice (normalized)", "add (normalized)")

	for _, cells := range []int{2, 4, 8, 16} {
		add, err := net.VariationAccuracy(test, "add", cells, 6, 1)
		if err != nil {
			log.Fatal(err)
		}
		splice, err := net.VariationAccuracy(test, "splice", 2, 6, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %22.3f %22.3f\n", cells, splice, add)
	}
	fmt.Println("paper (Figure 9): splice stays ~0.70; add reaches ~1.00 by 16 cells")
}
