// Serve a deployed spiking network under concurrent load: train a small
// MLP, deploy it, wrap it in the batched inference engine, and fire
// classifications from many goroutines — then compare the engine's
// answers and measured throughput against the serial Classify loop.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fpsa"
)

func main() {
	ctx := context.Background()
	ds := fpsa.SyntheticDataset(7, 900, 16, 4, 0.08)
	train, test := ds.Split(2.0 / 3)
	net, err := fpsa.TrainMLP(7, []int{16, 24, 4}, train, 40)
	if err != nil {
		log.Fatal(err)
	}
	d, err := fpsa.Compile(ctx, net.Model(), fpsa.WithWeightSource(net.WeightSource()))
	if err != nil {
		log.Fatal(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		log.Fatal(err)
	}

	const samples = 48
	serialStart := time.Now()
	serial := make([]int, samples)
	for i := range serial {
		if serial[i], err = sn.Classify(test.X[i], fpsa.ModeSpiking); err != nil {
			log.Fatal(err)
		}
	}
	serialDur := time.Since(serialStart)

	eng, err := d.NewEngine(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	const clients = 8
	var wg sync.WaitGroup
	mismatches := make([]int, clients)
	engineStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < samples; i++ {
				label, err := eng.Classify(ctx, test.X[i])
				if err != nil {
					log.Fatal(err)
				}
				if label != serial[i] {
					mismatches[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	engineDur := time.Since(engineStart)

	total := 0
	for _, m := range mismatches {
		total += m
	}
	fmt.Printf("serial: %d samples in %v (%.0f samples/s)\n",
		samples, serialDur.Round(time.Millisecond),
		float64(samples)/serialDur.Seconds())
	fmt.Printf("engine: %d clients x %d samples, %d mismatches\n", clients, samples, total)
	fmt.Printf("engine: %s\n", eng.Stats())
	fmt.Printf("engine wall time %v for %d samples (%.1fx serial rate)\n",
		engineDur.Round(time.Millisecond), clients*samples,
		(float64(clients*samples)/engineDur.Seconds())/(float64(samples)/serialDur.Seconds()))
}
