// Quickstart: compile VGG16 onto FPSA at the paper's 64× duplication and
// print the Table 3 numbers next to the published ones.
package main

import (
	"context"
	"fmt"
	"log"

	"fpsa"
)

func main() {
	m, err := fpsa.LoadBenchmark("VGG16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1fM weights, %.1fG ops/sample\n",
		m.Name(), float64(m.Weights())/1e6, float64(m.Ops())/1e9)

	d, err := fpsa.Compile(context.Background(), m, fpsa.WithDuplication(64))
	if err != nil {
		log.Fatal(err)
	}
	pes, smbs, clbs := d.Blocks()
	fmt.Printf("deployment: %d PEs, %d SMBs, %d CLBs on %.2f mm2\n",
		pes, smbs, clbs, d.AreaMM2())

	p, err := d.Performance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled:  %.4g samples/s, %.4g us latency, %.2f mm2\n",
		p.ThroughputSPS, p.LatencyUS, d.AreaMM2())
	fmt.Println("paper:    2.4e+03 samples/s, 671.8 us latency, 68.09 mm2 (Table 3)")
}
