// cnn_spiking: a handcrafted convolutional network — edge-detector filters,
// ReLU, max pooling, global average pooling, and a linear classifier —
// deployed functionally onto simulated FPSA processing elements and run as
// spike trains to classify striped images. No training involved: the
// example demonstrates that the synthesizer's structural lowerings
// (pairwise-max trees, averaging columns, im2col'd convolution) compute
// what they claim on real spiking hardware models.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"fpsa"
)

const size = 8

// stripes renders an 8×8 image of horizontal (dir 0) or vertical (dir 1)
// stripes with per-pixel jitter, as CHW features in [0,1].
func stripes(rng *rand.Rand, dir int) []float64 {
	img := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			k := y
			if dir == 1 {
				k = x
			}
			v := 0.1
			if k%2 == 0 {
				v = 0.9
			}
			img[y*size+x] = v + (rng.Float64()-0.5)*0.1
		}
	}
	return img
}

func main() {
	m, err := fpsa.NewModelBuilder("stripes", 1, size, size).
		Conv2D(2, 3, 1, 1).ReLU().
		MaxPool(2, 2).
		GlobalAvgPool().
		FC(2).ReLU().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weight layers: %v\n", m.WeightLayers())

	// Handcrafted filters: rows ordered (channel, ky, kx).
	// Filter 0 detects horizontal edges (strong for horizontal stripes),
	// filter 1 vertical edges.
	horiz := []float64{
		+1, +1, +1,
		0, 0, 0,
		-1, -1, -1,
	}
	vert := []float64{
		+1, 0, -1,
		+1, 0, -1,
		+1, 0, -1,
	}
	conv := make([][]float64, 9)
	for r := 0; r < 9; r++ {
		conv[r] = []float64{horiz[r], vert[r]}
	}
	weights := map[string][][]float64{
		m.WeightLayers()[0]: conv,
		m.WeightLayers()[1]: {{1, 0}, {0, 1}}, // identity classifier
	}

	d, err := fpsa.Compile(context.Background(), m, fpsa.WithWeights(weights))
	if err != nil {
		log.Fatal(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed: %d core-op stages, window Γ=%d\n", sn.Stages(), sn.Window())

	rng := rand.New(rand.NewSource(99))
	correct, n := 0, 40
	for i := 0; i < n; i++ {
		dir := i % 2
		label, err := sn.Classify(stripes(rng, dir), fpsa.ModeSpiking)
		if err != nil {
			log.Fatal(err)
		}
		if label == dir {
			correct++
		}
	}
	fmt.Printf("spiking CNN classified %d/%d striped images correctly\n", correct, n)

	out, err := sn.Outputs(stripes(rng, 0), fpsa.ModeSpiking)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("horizontal sample response (spike counts): horiz=%d vert=%d\n", out[0], out[1])
}
