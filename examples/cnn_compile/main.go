// cnn_compile: push LeNet through the full back end — synthesis,
// allocation at several duplication degrees, netlist generation, real
// simulated-annealing placement and PathFinder routing — and show how the
// measured routing geometry feeds the performance model.
package main

import (
	"context"
	"fmt"
	"log"

	"fpsa"
)

func main() {
	ctx := context.Background()
	m, err := fpsa.LoadBenchmark("LeNet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d weights, %d ops/sample\n", m.Name(), m.Weights(), m.Ops())

	for _, dup := range []int{1, 4, 16} {
		d, err := fpsa.Compile(ctx, m, fpsa.WithDuplication(dup), fpsa.WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		pes, smbs, clbs := d.Blocks()
		stats, err := d.PlaceAndRoute(ctx)
		if err != nil {
			log.Fatal(err)
		}
		p, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dup %2dx: %3d PE %2d SMB %2d CLB | %s\n", dup, pes, smbs, clbs, stats)
		fmt.Printf("         %.4g samples/s at %.2f mm2 (routed-hops comm %.0f ns/VMM)\n",
			p.ThroughputSPS, d.AreaMM2(), p.CommNSPerVMM)
	}
}
