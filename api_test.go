package fpsa

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"fpsa/internal/serve"
)

// TestCompileOptionsMatchConfig: the option-based Compile and the legacy
// Config-literal entry point are the same compile — identical netlists
// and bit-identical place & route.
func TestCompileOptionsMatchConfig(t *testing.T) {
	ctx := context.Background()
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	dn, err := Compile(ctx, m, WithDuplication(1), WithSeed(3), WithPlacementSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	do, err := CompileConfig(m, Config{Duplication: 1, Seed: 3, PlacementSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	np, ns, nc := dn.Blocks()
	op, os, oc := do.Blocks()
	if np != op || ns != os || nc != oc {
		t.Fatalf("blocks differ: new %d/%d/%d, old %d/%d/%d", np, ns, nc, op, os, oc)
	}
	sn, err := dn.PlaceAndRoute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	so, err := do.PlaceAndRoute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn, so) {
		t.Fatalf("place&route stats differ:\nnew %+v\nold %+v", sn, so)
	}
	bn, err := dn.Bitstream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := do.Bitstream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bn != bo {
		t.Fatalf("bitstreams differ: new %+v, old %+v", bn, bo)
	}
}

// trainedDeployment compiles the shared test MLP through the new
// surface, registering the trained weights and any extra options.
func trainedDeployment(t testing.TB, opts ...Option) (*Deployment, *TrainedMLP, Dataset) {
	t.Helper()
	ds := SyntheticDataset(5, 300, 12, 3, 0.08)
	train, test := ds.Split(0.7)
	net, err := TrainMLP(5, []int{12, 10, 8, 3}, train, 15)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithWeightSource(net.WeightSource())}, opts...)
	d, err := Compile(context.Background(), net.Model(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d, net, test
}

// TestNewNetMatchesOldDeploy: nets derived from the Deployment are
// bit-identical to the old TrainedMLP.Deploy path in every exec mode —
// including the noisy programming-variation sequence under a shared
// seed.
func TestNewNetMatchesOldDeploy(t *testing.T) {
	d, net, test := trainedDeployment(t)
	sn, err := d.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	old, err := net.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{ModeReference, ModeSpiking} {
		for i := 0; i < 12; i++ {
			a, err := sn.Outputs(test.X[i], mode)
			if err != nil {
				t.Fatal(err)
			}
			b, err := old.Outputs(test.X[i], mode)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("mode %v sample %d: new %v, old %v", mode, i, a, b)
			}
		}
	}
	// Noisy mode: same seed, same variation sequence.
	sn.SetSeed(9)
	old.SetSeed(9)
	for i := 0; i < 6; i++ {
		a, err := sn.Outputs(test.X[i], ModeSpikingNoisy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := old.Outputs(test.X[i], ModeSpikingNoisy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("noisy sample %d: new %v, old %v", i, a, b)
		}
	}
}

// TestNewNetMemoized: the compile-registered net is built once per
// deployment, so every engine shares one synthesized program; explicit
// weights build independent nets.
func TestNewNetMemoized(t *testing.T) {
	d, _, _ := trainedDeployment(t)
	a, err := d.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("NewNet(nil) did not memoize the compile-registered net")
	}
}

// TestNewNetRequiresWeights: a deployment compiled without weights
// cannot derive a net, and says so with the typed error.
func TestNewNetRequiresWeights(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewNet(nil); !errors.Is(err, ErrModelInvalid) {
		t.Fatalf("NewNet without weights: %v, want ErrModelInvalid", err)
	}
	if _, err := d.NewEngine(context.Background()); !errors.Is(err, ErrModelInvalid) {
		t.Fatalf("NewEngine without weights: %v, want ErrModelInvalid", err)
	}
}

// TestEngineInheritsDeploymentChips: the engine derived from a sharded
// deployment serves the compiled partition; a conflicting explicit
// override is the typed error, a matching one is accepted.
func TestEngineInheritsDeploymentChips(t *testing.T) {
	ctx := context.Background()
	d, _, test := trainedDeployment(t, WithChips(2))
	if d.Chips() != 2 {
		t.Fatalf("deployment chips = %d, want 2", d.Chips())
	}
	eng, err := d.NewEngine(ctx, WithMode(ModeReference))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Chips() != 2 {
		t.Errorf("engine inherited %d chips, want 2", eng.Chips())
	}
	if _, err := eng.Classify(ctx, test.X[0]); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	if _, err := d.NewEngine(ctx, WithEngineChips(3)); !errors.Is(err, ErrChipConflict) {
		t.Fatalf("conflicting chip override: %v, want ErrChipConflict", err)
	}
	if _, err := d.NewEngine(ctx, WithEngineChips(1)); !errors.Is(err, ErrChipConflict) {
		t.Fatalf("single-chip override of sharded deployment: %v, want ErrChipConflict", err)
	}
	match, err := d.NewEngine(ctx, WithEngineChips(2), WithMode(ModeReference))
	if err != nil {
		t.Fatalf("matching chip override rejected: %v", err)
	}
	match.Close()

	// On a single-chip deployment an explicit override is a serving-side
	// pipelining experiment, not a conflict.
	single, _, _ := trainedDeployment(t)
	eng2, err := single.NewEngine(ctx, WithEngineChips(2), WithMode(ModeReference))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.Chips() != 2 {
		t.Errorf("explicit pipelining realized %d chips, want 2", eng2.Chips())
	}
}

// TestSingleHandleMatchesTwoStackPath is the acceptance criterion: one
// handle compiles, shards and serves — Compile(ctx, m, WithChips(4),
// WithCache(c)) then d.NewEngine(ctx) — with outputs bit-identical to
// the old two-stack path (TrainedMLP.Deploy → NewEngine(sn, cfg)) in
// all three exec modes.
func TestSingleHandleMatchesTwoStackPath(t *testing.T) {
	ctx := context.Background()
	cache := NewCompileCache(0)
	d, net, test := trainedDeployment(t, WithChips(4), WithCache(cache))
	if d.Chips() < 2 {
		t.Fatalf("deployment realized %d chips, want ≥ 2", d.Chips())
	}
	if _, err := d.PlaceAndRoute(ctx); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Counters(); misses == 0 {
		t.Error("compile cache unused by sharded place&route")
	}
	batch := test.X[:12]
	for _, mode := range []ExecMode{ModeReference, ModeSpiking, ModeSpikingNoisy} {
		eng, err := d.NewEngine(ctx, WithWorkers(1), WithMaxBatch(4), WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.ClassifyBatch(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()

		// The old two-stack path: deploy the net functionally, then
		// re-declare the serving partition by hand.
		sn, err := net.Deploy()
		if err != nil {
			t.Fatal(err)
		}
		old, err := NewEngine(sn, EngineConfig{
			Workers: 1, MaxBatch: 4, Mode: mode, Chips: d.Chips(),
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := old.ClassifyBatch(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		old.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: single-handle %v, two-stack %v", mode, got, want)
		}
	}
}

// TestShardPolicyFlowsToEngine: the compiled WithShardPolicy governs
// the engine's stage cut too; outputs are bit-identical under every
// policy (the cut moves wall-clock, never results).
func TestShardPolicyFlowsToEngine(t *testing.T) {
	ctx := context.Background()
	var want []int
	for _, policy := range []ShardPolicy{ShardAuto, ShardMinCut, ShardBalanced} {
		d, _, test := trainedDeployment(t, WithChips(2), WithShardPolicy(policy))
		if d.Chips() != 2 {
			t.Fatalf("policy %v: deployment chips = %d, want 2", policy, d.Chips())
		}
		eng, err := d.NewEngine(ctx, WithWorkers(1), WithMode(ModeReference))
		if err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		got, err := eng.ClassifyBatch(ctx, test.X[:10])
		eng.Close()
		if err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %v classified %v, other policies %v", policy, got, want)
		}
	}
}

// TestEngineClosedTyped: after Close, engine methods return the typed
// ErrClosed, matchable both as fpsa.ErrClosed and as the internal
// sentinel it wraps — no internal imports needed by callers.
func TestEngineClosedTyped(t *testing.T) {
	ctx := context.Background()
	d, _, test := trainedDeployment(t)
	eng, err := d.NewEngine(ctx, WithMode(ModeReference))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = eng.ClassifyBatch(ctx, test.X[:4])
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ClassifyBatch after Close: %v, want ErrClosed", err)
	}
	if !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("ErrClosed does not wrap the internal sentinel: %v", err)
	}
	if !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("deprecated alias no longer matches: %v", err)
	}
	if _, err := eng.Classify(ctx, test.X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Classify after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.Outputs(ctx, test.X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Outputs after Close: %v, want ErrClosed", err)
	}
}

// TestModelInvalidTyped: the model taxonomy is matchable.
func TestModelInvalidTyped(t *testing.T) {
	if _, err := Compile(context.Background(), Model{}); !errors.Is(err, ErrModelInvalid) {
		t.Fatalf("zero-model Compile: %v, want ErrModelInvalid", err)
	}
}
