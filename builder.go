package fpsa

import (
	"fmt"

	"fpsa/internal/cgraph"
)

// ModelBuilder constructs custom networks for compilation onto FPSA. Calls
// chain; the first error sticks and is reported by Build. Mark/Use manage
// named taps for residual and inception topologies.
type ModelBuilder struct {
	g     *cgraph.Graph
	cur   *cgraph.Node
	marks map[string]*cgraph.Node
	err   error
	n     int
}

// NewModelBuilder starts a model with a C×H×W input (use H = W = 1 for
// flat feature vectors).
func NewModelBuilder(name string, c, h, w int) *ModelBuilder {
	b := &ModelBuilder{g: cgraph.New(name), marks: make(map[string]*cgraph.Node)}
	b.cur, b.err = b.g.Input("input", cgraph.Shape{C: c, H: h, W: w})
	return b
}

// add appends an op consuming the current node.
func (b *ModelBuilder) add(name string, op cgraph.Op, inputs ...*cgraph.Node) *ModelBuilder {
	if b.err != nil {
		return b
	}
	if len(inputs) == 0 {
		inputs = []*cgraph.Node{b.cur}
	}
	b.n++
	if name == "" {
		name = fmt.Sprintf("%s%d", op.Kind(), b.n)
	}
	b.cur, b.err = b.g.Add(name, op, inputs...)
	return b
}

// Conv2D appends a square convolution.
func (b *ModelBuilder) Conv2D(outC, kernel, stride, pad int) *ModelBuilder {
	return b.add("", cgraph.Conv2D{OutC: outC, Kernel: kernel, Stride: stride, Pad: pad})
}

// GroupedConv2D appends a grouped convolution (AlexNet-style).
func (b *ModelBuilder) GroupedConv2D(outC, kernel, stride, pad, groups int) *ModelBuilder {
	return b.add("", cgraph.Conv2D{OutC: outC, Kernel: kernel, Stride: stride, Pad: pad, Groups: groups})
}

// FC appends a fully connected layer (input must be flat; see Flatten).
func (b *ModelBuilder) FC(out int) *ModelBuilder { return b.add("", cgraph.FC{Out: out}) }

// ReLU appends a rectifier.
func (b *ModelBuilder) ReLU() *ModelBuilder { return b.add("", cgraph.ReLU{}) }

// MaxPool appends a max-pooling window.
func (b *ModelBuilder) MaxPool(kernel, stride int) *ModelBuilder {
	return b.add("", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: kernel, Stride: stride})
}

// AvgPool appends an average-pooling window.
func (b *ModelBuilder) AvgPool(kernel, stride int) *ModelBuilder {
	return b.add("", cgraph.Pool{PoolKind: cgraph.AvgPoolKind, Kernel: kernel, Stride: stride})
}

// GlobalAvgPool appends a global average pool.
func (b *ModelBuilder) GlobalAvgPool() *ModelBuilder { return b.add("", cgraph.GlobalAvgPool{}) }

// LRN appends local response normalization.
func (b *ModelBuilder) LRN() *ModelBuilder { return b.add("", cgraph.LRN{}) }

// BatchNorm appends inference-mode batch normalization.
func (b *ModelBuilder) BatchNorm() *ModelBuilder { return b.add("", cgraph.BatchNorm{}) }

// Flatten reshapes to a vector.
func (b *ModelBuilder) Flatten() *ModelBuilder { return b.add("", cgraph.Flatten{}) }

// Softmax appends the output normalization.
func (b *ModelBuilder) Softmax() *ModelBuilder { return b.add("", cgraph.Softmax{}) }

// Dropout appends an inference no-op dropout.
func (b *ModelBuilder) Dropout() *ModelBuilder { return b.add("", cgraph.Dropout{}) }

// Mark names the current node so a later Residual or Concat can tap it.
func (b *ModelBuilder) Mark(label string) *ModelBuilder {
	if b.err == nil {
		b.marks[label] = b.cur
	}
	return b
}

// Residual adds the marked node to the current one (elementwise).
func (b *ModelBuilder) Residual(label string) *ModelBuilder {
	if b.err != nil {
		return b
	}
	tap, ok := b.marks[label]
	if !ok {
		b.err = fmt.Errorf("%w: no mark %q", ErrModelInvalid, label)
		return b
	}
	return b.add("", cgraph.Add{}, b.cur, tap)
}

// Concat concatenates the current node with the marked nodes along
// channels.
func (b *ModelBuilder) Concat(labels ...string) *ModelBuilder {
	if b.err != nil {
		return b
	}
	inputs := []*cgraph.Node{b.cur}
	for _, l := range labels {
		tap, ok := b.marks[l]
		if !ok {
			b.err = fmt.Errorf("%w: no mark %q", ErrModelInvalid, l)
			return b
		}
		inputs = append(inputs, tap)
	}
	return b.add("", cgraph.Concat{}, inputs...)
}

// Build finalizes the model.
func (b *ModelBuilder) Build() (Model, error) {
	if b.err != nil {
		return Model{}, b.err
	}
	if err := b.g.Validate(); err != nil {
		return Model{}, err
	}
	return Model{graph: b.g}, nil
}
