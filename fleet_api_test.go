package fpsa

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpsa/internal/fleet"
)

// fleetTestPair trains and compiles two same-shape, different-weight
// deployments: the model a fleet starts with and the replacement a swap
// installs.
func fleetTestPair(t testing.TB) (d1, d2 *Deployment, test Dataset) {
	t.Helper()
	ds := SyntheticDataset(5, 300, 12, 3, 0.08)
	train, test := ds.Split(0.7)
	compile := func(seed int64) *Deployment {
		net, err := TrainMLP(seed, []int{12, 10, 8, 3}, train, 15)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Compile(context.Background(), net.Model(), WithWeightSource(net.WeightSource()), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return compile(5), compile(11), test
}

// TestFleetSwapBitExactUnderLoad is the hot-swap acceptance property, in
// all three exec modes: under sustained concurrent load, Swap loses zero
// requests; every response carries exactly one version stamp; and every
// response is bit-identical to a fresh single-engine serve of the
// deployment its stamp names — so post-swap traffic exactly matches a
// fresh engine over the new deployment, and no request ever mixes the
// two bitstreams.
func TestFleetSwapBitExactUnderLoad(t *testing.T) {
	d1, d2, test := fleetTestPair(t)
	for _, mode := range []ExecMode{ModeReference, ModeSpiking, ModeSpikingNoisy} {
		t.Run(mode.String(), func(t *testing.T) {
			// Ground truth: fresh one-worker engines over each deployment.
			want := make(map[int][][]int, 2) // version → per-sample outputs
			for v, d := range map[int]*Deployment{1: d1, 2: d2} {
				eng, err := d.NewEngine(context.Background(), WithWorkers(1), WithMode(mode))
				if err != nil {
					t.Fatal(err)
				}
				outs := make([][]int, len(test.X))
				for i, x := range test.X {
					if outs[i], err = eng.Outputs(context.Background(), x); err != nil {
						t.Fatal(err)
					}
				}
				if err := eng.Close(); err != nil {
					t.Fatal(err)
				}
				want[v] = outs
			}

			f, err := NewFleet(WithFleetChips(16), WithScaleInterval(time.Hour))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := f.AddModel(context.Background(), "m", d1,
				WithModelReplicas(2), WithModelQueueDepth(4096),
				WithModelEngine(WithMode(mode), WithFlushInterval(50*time.Microsecond))); err != nil {
				t.Fatal(err)
			}

			const loaders = 4
			const perLoad = 120
			var completed, badVersion, badOutput atomic.Uint64
			var firstErr atomic.Value
			var wg sync.WaitGroup
			for l := 0; l < loaders; l++ {
				wg.Add(1)
				go func(l int) {
					defer wg.Done()
					for i := 0; i < perLoad; i++ {
						idx := (l*perLoad + i) % len(test.X)
						out, version, err := f.Outputs(context.Background(), "m", "tenant", test.X[idx])
						if err != nil {
							firstErr.CompareAndSwap(nil, fmt.Errorf("loader %d sample %d: %w", l, i, err))
							return
						}
						completed.Add(1)
						exp, ok := want[version]
						if !ok {
							badVersion.Add(1)
							continue
						}
						if !reflect.DeepEqual(out, exp[idx]) {
							badOutput.Add(1)
						}
					}
				}(l)
			}
			time.Sleep(5 * time.Millisecond)
			ev, err := f.Swap(context.Background(), "m", d2)
			if err != nil {
				t.Fatalf("swap: %v", err)
			}
			if ev.FromVersion != 1 || ev.ToVersion != 2 || ev.Replicas != 2 {
				t.Fatalf("swap event = %+v", ev)
			}
			wg.Wait()
			if e := firstErr.Load(); e != nil {
				t.Fatalf("request failed under swap: %v", e)
			}
			if got := completed.Load(); got != loaders*perLoad {
				t.Fatalf("completed %d of %d requests — swap lost requests", got, loaders*perLoad)
			}
			if badVersion.Load() != 0 {
				t.Fatalf("%d responses stamped with an unknown version", badVersion.Load())
			}
			if badOutput.Load() != 0 {
				t.Fatalf("%d responses not bit-identical to a fresh engine of their stamped version", badOutput.Load())
			}
			// Post-swap traffic is the new bitstream, exactly.
			for i := 0; i < 8; i++ {
				out, version, err := f.Outputs(context.Background(), "m", "tenant", test.X[i])
				if err != nil || version != 2 {
					t.Fatalf("post-swap sample %d: version %d, err %v", i, version, err)
				}
				if !reflect.DeepEqual(out, want[2][i]) {
					t.Fatalf("post-swap sample %d: %v, want %v", i, out, want[2][i])
				}
			}
			st := f.Stats()
			ms := st.Models["m"]
			if ms.Version != 2 || ms.Errors != 0 || len(st.Swaps) != 1 {
				t.Fatalf("fleet stats after swap = %+v / swaps %d", ms, len(st.Swaps))
			}
			if ms.Requests < loaders*perLoad {
				t.Fatalf("stats requests = %d, want ≥ %d", ms.Requests, loaders*perLoad)
			}
		})
	}
}

// TestFleetShedErrorsJoinTaxonomy pins the typed shed errors into the
// PR 5 taxonomy: the public sentinels match their internal causes via
// errors.Is, and live sheds surface them.
func TestFleetShedErrorsJoinTaxonomy(t *testing.T) {
	if !errors.Is(ErrOverloaded, fleet.ErrOverloaded) {
		t.Fatal("ErrOverloaded must wrap the internal fleet sentinel")
	}
	if !errors.Is(ErrTenantQuota, fleet.ErrTenantQuota) {
		t.Fatal("ErrTenantQuota must wrap the internal fleet sentinel")
	}

	d1, _, test := fleetTestPair(t)
	f, err := NewFleet(
		WithFleetChips(4),
		WithScaleInterval(time.Hour),
		WithTenant("capped", QoSGold, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// One replica, queue depth 1: batch-class admission is 1 in flight.
	if err := f.AddModel(context.Background(), "m", d1,
		WithModelReplicas(1), WithModelQueueDepth(1)); err != nil {
		t.Fatal(err)
	}

	// shedOf fires bursts of concurrent requests as tenant until one
	// sheds, and returns the shed error.
	shedOf := func(tenant string) error {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			var wg sync.WaitGroup
			var shed atomic.Value
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, _, err := f.Outputs(context.Background(), "m", tenant, test.X[i%len(test.X)])
					if err != nil {
						shed.CompareAndSwap(nil, err)
					}
				}(i)
			}
			wg.Wait()
			if err := shed.Load(); err != nil {
				return err.(error)
			}
		}
		t.Fatal("no shed under sustained concurrent burst")
		return nil
	}

	if err := shedOf("anyone"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch burst shed = %v, want ErrOverloaded", err)
	}
	if err := shedOf("capped"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("quota-1 tenant shed = %v, want ErrTenantQuota", err)
	}
	st := f.Stats().Models["m"]
	if st.ShedOverload == 0 || st.ShedQuota == 0 {
		t.Fatalf("shed counters = %+v, want both nonzero", st)
	}

	// Routing and validation errors map into the taxonomy too.
	if _, _, err := f.Outputs(context.Background(), "ghost", "t", test.X[0]); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("unknown model = %v, want ErrInvalidArgument", err)
	}
	if err := f.AddModel(context.Background(), "m2", d1, WithModelReplicas(64)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("oversized pool = %v, want ErrCapacity", err)
	}
	if _, err := f.Swap(context.Background(), "ghost", d1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("swap of unknown model = %v, want ErrInvalidArgument", err)
	}
}

// TestFleetCompileAndSwapReusesCache: a swap whose replacement matches
// an earlier compile's structure rides the fleet's compile cache — the
// second compile is a cache hit, not a fresh place & route.
func TestFleetCompileAndSwapReusesCache(t *testing.T) {
	ds := SyntheticDataset(5, 300, 12, 3, 0.08)
	train, _ := ds.Split(0.7)
	net1, err := TrainMLP(5, []int{12, 10, 8, 3}, train, 15)
	if err != nil {
		t.Fatal(err)
	}
	net2, err := TrainMLP(11, []int{12, 10, 8, 3}, train, 15)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCompileCache(0)
	f, err := NewFleet(WithFleetChips(8), WithFleetCache(cache), WithScaleInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d1, err := Compile(context.Background(), net1.Model(), WithWeightSource(net1.WeightSource()), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddModel(context.Background(), "m", d1); err != nil {
		t.Fatal(err)
	}
	hits0, _ := cache.Counters()
	// Same structure, new weights: place & route must come from the cache.
	_, ev, err := f.CompileAndSwap(context.Background(), "m", net2.Model(), WithWeightSource(net2.WeightSource()))
	if err != nil {
		t.Fatal(err)
	}
	if ev.ToVersion != 2 {
		t.Fatalf("swap event = %+v", ev)
	}
	if hits, _ := cache.Counters(); hits <= hits0 {
		t.Fatalf("cache hits %d → %d; the swap recompile missed the compile cache", hits0, hits)
	}
	if _, version, err := f.Outputs(context.Background(), "m", "t", ds.X[0]); err != nil || version != 2 {
		t.Fatalf("post-swap request: version %d, err %v", version, err)
	}
}

// TestFleetQoSClassParsing covers the public class surface used by fleet
// config files.
func TestFleetQoSClassParsing(t *testing.T) {
	for s, want := range map[string]QoSClass{"gold": QoSGold, "silver": QoSSilver, "batch": QoSBatch, "": QoSBatch} {
		got, err := ParseQoSClass(s)
		if err != nil || got != want {
			t.Fatalf("ParseQoSClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseQoSClass("plutonium"); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("ParseQoSClass(plutonium) = %v, want ErrInvalidArgument", err)
	}
	if QoSGold.String() != "gold" || QoSBatch.String() != "batch" {
		t.Fatal("QoSClass.String names wrong")
	}
}
