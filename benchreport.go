package fpsa

import (
	"context"
	"encoding/json"
	"runtime"
)

// BenchReport bundles the measured serving artifacts — the single-chip
// serving-throughput benchmark and the multi-chip sharded-pipeline sweep
// — in one machine-readable record, together with the host parallelism
// that shaped the numbers (pipeline speedup needs GOMAXPROCS ≥ chips).
// fpsa-bench -json emits it; committed snapshots (BENCH_PR*.json) track
// the numbers across changes.
type BenchReport struct {
	// GoMaxProcs and NumCPU record the parallelism available to the
	// run; a 1-core host cannot show pipeline speedup.
	GoMaxProcs int
	NumCPU     int
	Serving    ServingBenchResult
	Sharding   ShardingBenchResult
}

// JSON renders the report as indented JSON with a trailing newline.
func (r BenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunBenchReport runs both measured serving experiments at the given
// micro-batch size (≤ 0 uses the default) and returns the combined
// report. It backs fpsa-bench's -json flag; ctx bounds both runs.
func RunBenchReport(ctx context.Context, batch int) (BenchReport, error) {
	rep := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	var err error
	rep.Serving, err = ServingBench(ctx, ServingBenchOptions{Batch: batch, Mode: ModeSpiking})
	if err != nil {
		return rep, err
	}
	rep.Sharding, err = ShardingBench(ctx, ShardingBenchOptions{Batch: batch, Mode: ModeSpiking})
	return rep, err
}
