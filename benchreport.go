package fpsa

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
)

// BenchReport bundles the measured serving artifacts — the single-chip
// serving-throughput benchmark, the multi-chip sharded-pipeline sweep,
// and the sparse-kernel density sweep — in one machine-readable record,
// together with the host parallelism that shaped the numbers (pipeline
// speedup needs GOMAXPROCS ≥ chips). fpsa-bench -json emits it;
// committed snapshots (BENCH_PR*.json) track the numbers across changes,
// and fpsa-bench -baseline compares a fresh run against one.
type BenchReport struct {
	// GoMaxProcs and NumCPU record the parallelism available to the
	// run; a 1-core host cannot show pipeline speedup.
	GoMaxProcs int
	NumCPU     int
	Serving    ServingBenchResult
	Sharding   ShardingBenchResult
	Sparsity   SparsityBenchResult
}

// JSON renders the report as indented JSON with a trailing newline.
func (r BenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunBenchReport runs the measured serving experiments at the given
// micro-batch size and sample count (≤ 0 uses each experiment's default)
// and returns the combined report. It backs fpsa-bench's -json flag; ctx
// bounds the runs. Small sample counts make the run cheap enough for CI
// at the cost of noisier numbers — pair them with a loose -regress
// tolerance.
func RunBenchReport(ctx context.Context, batch, samples int) (BenchReport, error) {
	rep := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	var err error
	rep.Serving, err = ServingBench(ctx, ServingBenchOptions{Batch: batch, Samples: samples, Mode: ModeSpiking})
	if err != nil {
		return rep, err
	}
	rep.Sharding, err = ShardingBench(ctx, ShardingBenchOptions{Batch: batch, Samples: samples, Mode: ModeSpiking})
	if err != nil {
		return rep, err
	}
	rep.Sparsity, err = SparsityBench(ctx, SparsityBenchOptions{Batch: batch, Samples: samples})
	return rep, err
}

// CompareBenchReports checks cur's serving throughput against a baseline
// report and returns one message per metric that regressed by more than
// tol (e.g. 0.10 = fail below 90% of baseline). Baseline metrics that
// are zero or absent — an older snapshot without a newer experiment —
// are skipped, so reports stay comparable across schema growth. Only
// throughput regresses a report; speedup ratios shift with host load and
// are informational.
func CompareBenchReports(baseline, cur BenchReport, tol float64) []string {
	var regressions []string
	check := func(name string, base, now float64) {
		if base <= 0 {
			return
		}
		if now < base*(1-tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed: %.1f -> %.1f samples/s (%.1f%% below baseline, tolerance %.0f%%)",
					name, base, now, 100*(1-now/base), 100*tol))
		}
	}
	check("serving serial", baseline.Serving.SerialSPS, cur.Serving.SerialSPS)
	check("serving batched", baseline.Serving.BatchedSPS, cur.Serving.BatchedSPS)
	check("serving engine", baseline.Serving.EngineSPS, cur.Serving.EngineSPS)
	for _, base := range baseline.Sharding.Rows {
		for _, now := range cur.Sharding.Rows {
			if now.RealChips == base.RealChips {
				check(fmt.Sprintf("sharding %d-chip", base.RealChips), base.ThroughputSPS, now.ThroughputSPS)
				break
			}
		}
	}
	for _, base := range baseline.Sparsity.Rows {
		for _, now := range cur.Sparsity.Rows {
			if now.TargetDensity == base.TargetDensity {
				check(fmt.Sprintf("sparsity d=%.2f sparse", base.TargetDensity), base.SparseSPS, now.SparseSPS)
				break
			}
		}
	}
	return regressions
}
