package fpsa

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
)

// BenchReport bundles the measured serving artifacts — the single-chip
// serving-throughput benchmark, the multi-chip sharded-pipeline sweep,
// and the sparse-kernel density sweep — in one machine-readable record,
// together with the host parallelism that shaped the numbers (pipeline
// speedup needs GOMAXPROCS ≥ chips). fpsa-bench -json emits it;
// committed snapshots (BENCH_PR*.json) track the numbers across changes,
// and fpsa-bench -baseline compares a fresh run against one.
type BenchReport struct {
	// GoMaxProcs and NumCPU record the parallelism available to the
	// run; a 1-core host cannot show pipeline speedup.
	GoMaxProcs int
	NumCPU     int
	Serving    ServingBenchResult
	Sharding   ShardingBenchResult
	Sparsity   SparsityBenchResult
	// Autotune is the compilation-autotuner sweep: tuned-vs-uniform
	// perf-model numbers (deterministic, so comparable across runs
	// without host-noise caveats) plus search wall-clock and compile-
	// cache traffic.
	Autotune AutotuneBenchResult
	// Faults is the fault-injection reliability sweep: accuracy vs
	// stuck-cell rate with and without spare-row/column remapping
	// (deterministic — ModeReference over seeded fault draws — so drops
	// are algorithm changes, not host noise).
	Faults FaultBenchResult
	// Fleet is the multi-model, multi-tenant serving run: mixed-tenant
	// load-generator throughput, p50/p99/p999 tail latency, shed rate,
	// and mid-run hot-swap durations.
	Fleet FleetBenchResult
}

// JSON renders the report as indented JSON with a trailing newline.
func (r BenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunBenchReport runs the measured serving experiments at the given
// micro-batch size and sample count (≤ 0 uses each experiment's default)
// and returns the combined report. It backs fpsa-bench's -json flag; ctx
// bounds the runs. Small sample counts make the run cheap enough for CI
// at the cost of noisier numbers — pair them with a loose -regress
// tolerance.
func RunBenchReport(ctx context.Context, batch, samples int) (BenchReport, error) {
	rep := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	var err error
	rep.Serving, err = ServingBench(ctx, ServingBenchOptions{Batch: batch, Samples: samples, Mode: ModeSpiking})
	if err != nil {
		return rep, err
	}
	rep.Sharding, err = ShardingBench(ctx, ShardingBenchOptions{Batch: batch, Samples: samples, Mode: ModeSpiking})
	if err != nil {
		return rep, err
	}
	rep.Sparsity, err = SparsityBench(ctx, SparsityBenchOptions{Batch: batch, Samples: samples})
	if err != nil {
		return rep, err
	}
	rep.Autotune, err = AutotuneBench(ctx, AutotuneBenchOptions{})
	if err != nil {
		return rep, err
	}
	rep.Faults, err = FaultBench(ctx, FaultBenchOptions{})
	if err != nil {
		return rep, err
	}
	// Scale the fleet load to the sample budget: the full 200k-request
	// artifact is for committed snapshots; CI's small -samples runs get a
	// proportionally smaller (but still mixed-tenant, still swapping)
	// load.
	fleetOpts := FleetBenchOptions{Mode: ModeSpiking}
	if samples > 0 {
		fleetOpts.Requests = samples * 64
	}
	rep.Fleet, err = FleetBench(ctx, fleetOpts)
	return rep, err
}

// CompareBenchReports checks cur against a baseline report and returns
// one regression message per metric that dropped by more than tol (e.g.
// 0.10 = fail below 90% of baseline): the serving-throughput families,
// and the autotuner's tuned-vs-uniform improvement (deterministic, so a
// drop there is an algorithm change, not host noise). Baseline metrics
// that are zero or absent are skipped; a whole section the baseline
// predates — an older snapshot without a newer experiment — degrades to
// a warning instead of a failure, so reports stay comparable across
// schema growth. Speedup ratios shift with host load and are
// informational.
func CompareBenchReports(baseline, cur BenchReport, tol float64) (regressions, warnings []string) {
	check := func(name string, base, now float64, unit string) {
		if base <= 0 {
			return
		}
		if now < base*(1-tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed: %.1f -> %.1f %s (%.1f%% below baseline, tolerance %.0f%%)",
					name, base, now, unit, 100*(1-now/base), 100*tol))
		}
	}
	section := func(name string, baseEmpty, curEmpty bool) bool {
		if !baseEmpty {
			return true
		}
		if !curEmpty {
			warnings = append(warnings,
				fmt.Sprintf("baseline has no %s section (older snapshot); skipping its checks", name))
		}
		return false
	}
	servingEmpty := func(r ServingBenchResult) bool {
		return r.SerialSPS == 0 && r.BatchedSPS == 0 && r.EngineSPS == 0
	}
	if section("serving", servingEmpty(baseline.Serving), servingEmpty(cur.Serving)) {
		check("serving serial", baseline.Serving.SerialSPS, cur.Serving.SerialSPS, "samples/s")
		check("serving batched", baseline.Serving.BatchedSPS, cur.Serving.BatchedSPS, "samples/s")
		check("serving engine", baseline.Serving.EngineSPS, cur.Serving.EngineSPS, "samples/s")
	}
	if section("sharding", len(baseline.Sharding.Rows) == 0, len(cur.Sharding.Rows) == 0) {
		for _, base := range baseline.Sharding.Rows {
			for _, now := range cur.Sharding.Rows {
				if now.RealChips == base.RealChips {
					check(fmt.Sprintf("sharding %d-chip", base.RealChips), base.ThroughputSPS, now.ThroughputSPS, "samples/s")
					break
				}
			}
		}
	}
	if section("sparsity", len(baseline.Sparsity.Rows) == 0, len(cur.Sparsity.Rows) == 0) {
		for _, base := range baseline.Sparsity.Rows {
			for _, now := range cur.Sparsity.Rows {
				if now.TargetDensity == base.TargetDensity {
					check(fmt.Sprintf("sparsity d=%.2f sparse", base.TargetDensity), base.SparseSPS, now.SparseSPS, "samples/s")
					break
				}
			}
		}
	}
	if section("autotune", len(baseline.Autotune.Rows) == 0, len(cur.Autotune.Rows) == 0) {
		for _, base := range baseline.Autotune.Rows {
			for _, now := range cur.Autotune.Rows {
				if now.Objective == base.Objective && now.Budget == base.Budget {
					check(fmt.Sprintf("autotune %s/%d improvement", base.Objective, base.Budget),
						base.ImprovementPct, now.ImprovementPct, "% gain")
					break
				}
			}
		}
	}
	if section("faults", len(baseline.Faults.Rows) == 0, len(cur.Faults.Rows) == 0) {
		// Fault-sweep accuracies are deterministic functions of seeded
		// draws, so remapped accuracy dropping at a matched rate means the
		// fault model or the remapper changed behavior.
		check("faults baseline accuracy", baseline.Faults.BaselineAcc, cur.Faults.BaselineAcc, "accuracy")
		for _, base := range baseline.Faults.Rows {
			for _, now := range cur.Faults.Rows {
				if now.Rate == base.Rate {
					check(fmt.Sprintf("faults rate=%g remapped", base.Rate), base.AccRemap, now.AccRemap, "accuracy")
					break
				}
			}
		}
	}
	if section("fleet", baseline.Fleet.Offered == 0, cur.Fleet.Offered == 0) {
		// Fleet QPS is the one throughput family here; tail latencies and
		// shed rate move with host load and request-count scaling, so they
		// are informational.
		check("fleet qps", baseline.Fleet.QPS, cur.Fleet.QPS, "req/s")
	}
	return regressions, warnings
}
