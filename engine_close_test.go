package fpsa

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineCloseVsInflight races Engine.Close against a storm of
// concurrent Classify/Outputs calls and pins the drain contract the
// fleet layer builds on: every request either completes with a full,
// correct result or fails with ErrClosed — never a partial result, and
// never any other error. Requests submitted after Close must see
// ErrClosed.
func TestEngineCloseVsInflight(t *testing.T) {
	d, _, test := trainedDeployment(t)
	// Ground truth for result integrity.
	ref, err := d.NewEngine(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(test.X))
	for i, x := range test.X {
		if want[i], err = ref.Outputs(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		eng, err := d.NewEngine(context.Background(), WithWorkers(2), WithFlushInterval(50*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		var (
			completed atomic.Uint64
			closedErr atomic.Uint64
			bad       atomic.Uint64
			other     atomic.Value
			wg        sync.WaitGroup
		)
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					idx := (g*50 + i) % len(test.X)
					out, err := eng.Outputs(context.Background(), test.X[idx])
					switch {
					case err == nil:
						completed.Add(1)
						if !reflect.DeepEqual(out, want[idx]) {
							bad.Add(1)
						}
					case errors.Is(err, ErrClosed):
						closedErr.Add(1)
						if out != nil {
							bad.Add(1) // partial result alongside ErrClosed
						}
					default:
						other.CompareAndSwap(nil, err)
					}
				}
			}(g)
		}
		close(start)
		// Let some requests land in flight, then close under them.
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if e := other.Load(); e != nil {
			t.Fatalf("round %d: unexpected error class: %v", round, e)
		}
		if bad.Load() != 0 {
			t.Fatalf("round %d: %d corrupt or partial results", round, bad.Load())
		}
		if completed.Load()+closedErr.Load() != 8*50 {
			t.Fatalf("round %d: %d completed + %d closed ≠ %d offered",
				round, completed.Load(), closedErr.Load(), 8*50)
		}
		// Late requests on a fully closed engine are always ErrClosed, on
		// both public entry points.
		if _, err := eng.Classify(context.Background(), test.X[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: post-close Classify = %v, want ErrClosed", round, err)
		}
		if out, err := eng.Outputs(context.Background(), test.X[0]); !errors.Is(err, ErrClosed) || out != nil {
			t.Fatalf("round %d: post-close Outputs = %v, %v; want nil, ErrClosed", round, out, err)
		}
	}
}
